//! The engine front door: query evaluation, per-answer attribution, and the
//! cross-answer d-tree cache.

use crate::attribution::{Attribution, Degradation, DegradeReason, Ranked};
use crate::attributor::Attributor;
use crate::cache::{CacheStats, CanonInfo, Lookup, Prekeyed, Resident, Shape, ShardedCache};
use crate::canon::Fingerprint;
use crate::config::{Algorithm, EngineConfig, FallbackPolicy, Rung};
use crate::persist::SnapshotError;
use crate::registry::{first_with, Precision};
use banzhaf::{Budget, Interrupted};
use banzhaf_boolean::{Dnf, WeightedDnf};
use banzhaf_db::{Database, Value};
use banzhaf_query::{evaluate, UnionQuery};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The attribution engine: owns an [`EngineConfig`] and hands out
/// [`Session`]s that batch attribution across the answers of a query.
///
/// ```
/// use banzhaf_engine::{Engine, EngineConfig};
/// use banzhaf_db::Database;
/// use banzhaf_query::parse_program;
///
/// let mut db = Database::new();
/// db.add_relation("R", 1);
/// db.add_relation("S", 2);
/// db.insert_endogenous("R", vec![1.into()]).unwrap();
/// db.insert_endogenous("S", vec![1.into(), 2.into()]).unwrap();
/// let query = parse_program("Q() :- R(X), S(X, Y).").unwrap();
///
/// let engine = Engine::new(EngineConfig::default());
/// let explained = engine.session().explain(&query, &db);
/// assert_eq!(explained.answers.len(), 1);
/// let attribution = explained.answers[0].attribution().unwrap();
/// assert_eq!(attribution.model_count.as_ref().unwrap().to_u64(), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct Engine {
    config: EngineConfig,
    /// The cross-session attribution cache: shared by every session of this
    /// engine (and by clones of the engine, which keep pointing at the same
    /// store), sharded by fingerprint hash, size-bounded with per-shard LRU
    /// eviction.
    cache: Arc<ShardedCache>,
    /// Engine-global sample-stream allocator: sessions draw disjoint stream
    /// index ranges from it, so randomized backends never replay one
    /// another's samples (two sessions each counting from 0 with the same
    /// seed would produce identical, perfectly correlated estimates).
    streams: Arc<AtomicU64>,
    /// Present iff [`CacheConfig::warm_start`](crate::CacheConfig) is set:
    /// shared by every clone of the engine, and the *last* clone to drop
    /// writes the snapshot back — sessions do not hold it, so handing out
    /// sessions never extends the engine's persistence lifetime.
    _warm: Option<Arc<WarmStartGuard>>,
}

/// Writes the warm-start snapshot back when the last engine clone drops.
struct WarmStartGuard {
    path: PathBuf,
    cache: Arc<ShardedCache>,
}

impl Drop for WarmStartGuard {
    fn drop(&mut self) {
        // Drop cannot propagate an error; a failed save leaves the previous
        // snapshot intact (the writer renames a complete temp file into
        // place), so the next start is merely as warm as the last good save.
        let _ = self.cache.save(&self.path);
    }
}

impl fmt::Debug for WarmStartGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WarmStartGuard").field("path", &self.path).finish_non_exhaustive()
    }
}

/// One consistent view of an engine's cache tier, from [`Engine::stats`]:
/// the aggregate counters plus the per-shard breakdown.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct EngineSnapshot {
    /// Counters summed across every shard (`entries`/`capacity` included).
    pub cache: CacheStats,
    /// Per-shard counters, indexed by shard (length = number of shards).
    /// Engine-wide telemetry — canonicalization costs, snapshot
    /// loads/rejects — is recorded on shard 0.
    pub shards: Vec<CacheStats>,
}

impl Engine {
    /// An engine with the given configuration.
    ///
    /// If [`CacheConfig::warm_start`](crate::CacheConfig) names an existing
    /// snapshot, it is loaded here — a rejected snapshot (corrupt, wrong
    /// version) counts a `snapshot_rejects` and the engine starts cold; it
    /// never panics and never admits a partial load. The snapshot is written
    /// back when the last clone of the engine drops (or on demand via
    /// [`Engine::save_cache`]).
    pub fn new(config: EngineConfig) -> Self {
        let cache = Arc::new(ShardedCache::new(config.cache.shards, config.cache.capacity));
        let warm = config.cache.warm_start.clone().map(|path| {
            if path.exists() {
                // Errors are recorded in `snapshot_rejects`; a missing or
                // rejected snapshot is a cold start, not a failure.
                let _ = cache.load(&path);
            }
            Arc::new(WarmStartGuard { path, cache: Arc::clone(&cache) })
        });
        Engine { config, cache, streams: Arc::new(AtomicU64::new(0)), _warm: warm }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The attributor the configuration describes (for one-off calls; use a
    /// [`Session`] to batch attributions and share work across answers).
    pub fn attributor(&self) -> Box<dyn Attributor> {
        self.config.attributor()
    }

    /// The engine's shared cross-session cache tier.
    pub fn shared_cache(&self) -> &Arc<ShardedCache> {
        &self.cache
    }

    /// The shard that owns `lineage`'s cache entry — the fleet partition
    /// function, stable across processes (serving layers report it per
    /// request).
    pub fn shard_of(&self, lineage: &Dnf) -> usize {
        self.cache.shard_of(lineage)
    }

    /// One consistent snapshot of the cache tier: aggregate counters plus
    /// the per-shard breakdown.
    pub fn stats(&self) -> EngineSnapshot {
        EngineSnapshot { cache: self.cache.stats(), shards: self.cache.shard_stats() }
    }

    /// Writes the cache tier's warm-start snapshot to `path` on demand
    /// (independent of the drop-time save wired through
    /// [`CacheConfig::warm_start`](crate::CacheConfig)). Returns the number
    /// of entries written.
    pub fn save_cache(&self, path: impl AsRef<Path>) -> Result<usize, SnapshotError> {
        self.cache.save(path)
    }

    /// Starts a session: a stateful pipeline instance sharing the engine's
    /// cross-session cache and accumulating its own [`SessionStats`].
    ///
    /// Sessions are independent (`Session` is `Send`, one per worker thread
    /// in concurrent serving), but all of them read and merge into the same
    /// [`crate::SharedCache`], so a compilation performed by one session is a cache
    /// hit for every other.
    pub fn session(&self) -> Session {
        Session {
            config: self.config.clone(),
            attributor: self.config.attributor(),
            aggregate_attributor: None,
            cache: Arc::clone(&self.cache),
            stats: SessionStats::default(),
            streams: Arc::clone(&self.streams),
        }
    }
}

/// Work-sharing statistics accumulated by a [`Session`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionStats {
    /// Attributions served (cache hits included).
    pub attributions: u64,
    /// Attributions served from the canonical-lineage cache.
    pub cache_hits: u64,
    /// Total knowledge-compilation steps actually performed.
    pub compile_steps: u64,
    /// Total colour-refinement steps spent canonicalizing lineages for the
    /// shared cache's exact keys. Only paid when a fingerprint bucket is
    /// contested — weigh against the `compile_steps` the hits save.
    pub canon_steps: u64,
    /// Individualization searches actually run (one per shape
    /// canonicalized; fingerprint-resolved lookups run none).
    pub canon_searches: u64,
    /// Lookups resolved without any search because their cheap
    /// isomorphism-invariant fingerprint had no resident entry.
    pub prekey_skips: u64,
    /// Answers resolved by a fallback rung after the primary attributor
    /// failed (see [`FallbackPolicy`]); a strict session never counts any.
    pub degraded: u64,
    /// Steps charged to fallback rungs while resolving degraded answers
    /// (failed intermediate rungs included).
    pub fallback_steps: u64,
    /// Total wall-clock time spent inside backends.
    pub wall: Duration,
}

/// Options for [`Session::attribute_batch`].
///
/// Non-exhaustive by design, like [`EngineConfig`]: construct with
/// [`BatchOptions::default`] (or [`BatchOptions::new`]) and refine through
/// the `with_*` builders, so new options never break callers.
#[derive(Clone, Copy, Debug, Default)]
#[non_exhaustive]
pub struct BatchOptions<'a> {
    /// One *shared* budget charged by every instance of the batch, instead of
    /// a fresh per-instance budget from the configuration. All workers charge
    /// the same atomic deadline/step counters, so a batch that exceeds the
    /// budget is interrupted cooperatively across every worker at once:
    /// finished instances keep their results, unfinished ones return
    /// [`Interrupted`].
    pub shared_budget: Option<&'a Budget>,
    /// Per-call override of the configuration's [`FallbackPolicy`] (the
    /// serving layer threads a per-request policy through here). `None`
    /// falls back to [`EngineConfig::fallback`].
    pub fallback: Option<&'a FallbackPolicy>,
}

impl<'a> BatchOptions<'a> {
    /// The default options: per-instance budgets from the configuration.
    pub fn new() -> Self {
        BatchOptions::default()
    }

    /// Runs the whole batch under one shared budget.
    pub fn with_shared_budget(mut self, budget: &'a Budget) -> Self {
        self.shared_budget = Some(budget);
        self
    }

    /// Overrides the configuration's budget-exhaustion fallback policy for
    /// this batch.
    pub fn with_fallback(mut self, fallback: &'a FallbackPolicy) -> Self {
        self.fallback = Some(fallback);
        self
    }
}

/// One answer tuple with its lineage and attribution outcome.
#[derive(Clone, Debug)]
pub struct AnswerAttribution {
    /// The answer tuple (empty for Boolean queries).
    pub tuple: Vec<Value>,
    /// The answer's lineage.
    pub lineage: Dnf,
    /// The attribution of the answer's supporting facts, or [`Interrupted`]
    /// if *this answer* exceeded its budget. Outcomes are per answer: one
    /// starved answer does not discard the completed work of its siblings.
    pub outcome: Result<Attribution, Interrupted>,
}

impl AnswerAttribution {
    /// The attribution, if this answer finished within its budget.
    pub fn attribution(&self) -> Option<&Attribution> {
        self.outcome.as_ref().ok()
    }
}

/// The result of explaining a whole query: one attribution outcome per
/// answer.
#[derive(Clone, Debug)]
pub struct QueryAttribution {
    /// Per-answer attributions, in the evaluator's sorted answer order.
    pub answers: Vec<AnswerAttribution>,
}

impl QueryAttribution {
    /// `true` iff every answer finished within its budget.
    pub fn is_complete(&self) -> bool {
        self.answers.iter().all(|a| a.outcome.is_ok())
    }

    /// The answers that finished within their budgets.
    pub fn finished(&self) -> impl Iterator<Item = &AnswerAttribution> + '_ {
        self.answers.iter().filter(|a| a.outcome.is_ok())
    }

    /// Number of answers whose attribution was interrupted.
    pub fn num_starved(&self) -> usize {
        self.answers.iter().filter(|a| a.outcome.is_err()).count()
    }
}

/// A stateful attribution pipeline: evaluates queries, computes per-answer
/// lineage, and batches attribution across answers while sharing work through
/// the engine's *shared* cache keyed by canonical lineage — distinct answers
/// (and distinct sessions of the same engine) frequently share isomorphic
/// lineage, and a hit skips compilation entirely.
///
/// Batch entry points ([`Session::attribute_batch`], [`Session::explain`])
/// fan the per-shape attribution across the configured thread pool
/// ([`EngineConfig::threads`]); results are bit-identical to the sequential
/// path at every thread count.
pub struct Session {
    config: EngineConfig,
    attributor: Box<dyn Attributor>,
    /// Built lazily on the first aggregate attribution *iff* the configured
    /// backend does not advertise the aggregate capability in the registry:
    /// the session substitutes the first exact aggregate-capable backend
    /// (ExaBan) rather than panicking, mirroring the fallback ladder's
    /// capability-driven rung selection.
    aggregate_attributor: Option<Box<dyn Attributor>>,
    /// The engine-level shared cache tier: canonical lineage → attribution
    /// over canonical variables, sharded by fingerprint hash.
    cache: Arc<ShardedCache>,
    stats: SessionStats,
    /// The engine-global sample-stream allocator (randomized backends select
    /// their RNG streams from it; deterministic backends ignore it). Shared
    /// across sessions so concurrent sessions draw disjoint streams.
    streams: Arc<AtomicU64>,
}

impl Session {
    /// The session's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The work-sharing statistics accumulated so far.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// One consistent snapshot of the *shared* cache tier (hits from every
    /// session of the engine, not just this one; see [`SessionStats`] for
    /// the per-session view): aggregate counters plus the per-shard
    /// breakdown.
    pub fn engine_stats(&self) -> EngineSnapshot {
        EngineSnapshot { cache: self.cache.stats(), shards: self.cache.shard_stats() }
    }

    /// Evaluates a UCQ over a database and attributes every answer, fanning
    /// the per-answer work across the configured thread pool.
    ///
    /// Outcomes are per answer: an answer that exceeded its budget carries
    /// `Err(Interrupted)` in its [`AnswerAttribution::outcome`] while its
    /// siblings keep their completed attributions.
    pub fn explain(&mut self, query: &UnionQuery, db: &Database) -> QueryAttribution {
        let result = evaluate(query, db);
        let raw: Vec<_> = result.into_answers();
        let lineages: Vec<&Dnf> = raw.iter().map(|a| &a.lineage).collect();
        let outcomes = self.attribute_batch(&lineages, BatchOptions::default());
        let answers = raw
            .into_iter()
            .zip(outcomes)
            .map(|(answer, outcome)| AnswerAttribution {
                tuple: answer.tuple,
                lineage: answer.lineage,
                outcome,
            })
            .collect();
        QueryAttribution { answers }
    }

    /// Attributes one lineage under the configured budget, consulting the
    /// d-tree cache when enabled.
    ///
    /// The backend always runs on the *dense* presentation of the lineage
    /// (variables renamed to `0..n` by first occurrence — attribution values
    /// are invariant under renaming, and the renaming is linear in the
    /// lineage size), so a cached and an uncached session perform identical
    /// compile work per lineage and their results are bit-for-bit
    /// comparable. The isomorphism-invariant canonical key is only computed
    /// when the cache's cheap fingerprint pre-key is contested.
    pub fn attribute(&mut self, lineage: &Dnf) -> Result<Attribution, Interrupted> {
        // Single-instance batch: the planning loop resolves a cache hit
        // before any compile work, and the shared counters record exactly
        // one lookup per logical attribution (a separate fast-path lookup
        // here would double-count misses in `Engine::stats`).
        self.batch_prekeyed(vec![Prekeyed::of(lineage)], None, None)
            .pop()
            .expect("one lineage in, one attribution out")
    }

    /// Attributes a batch of lineages, fanning the work across the
    /// configured thread pool ([`EngineConfig::threads`]).
    ///
    /// Work sharing mirrors the sequential loop exactly: lineages are
    /// fingerprinted and grouped first (with the exact canonical key
    /// computed lazily, only where fingerprints collide), each *distinct*
    /// uncached shape is compiled once (in parallel), and the freshly
    /// compiled trees are merged into the d-tree cache by the session alone
    /// once the workers have joined — the cache never sees concurrent
    /// writers. By default every instance gets its own fresh [`Budget`] from
    /// the configuration, exactly as repeated [`Session::attribute`] calls
    /// would, so the per-instance results — values, model counts, cache-hit
    /// flags, and `Interrupted` outcomes under step caps — are
    /// **bit-identical to the sequential path at every thread count**;
    /// [`BatchOptions::with_shared_budget`] charges the whole batch against
    /// one budget instead.
    pub fn attribute_batch(
        &mut self,
        lineages: &[&Dnf],
        options: BatchOptions<'_>,
    ) -> Vec<Result<Attribution, Interrupted>> {
        // The dense renaming and fingerprint are one linear pass per
        // lineage; the expensive canonical search only runs inside the
        // planning loop, where the sequential cache-state walk decides
        // (deterministically) which instances actually need it.
        let prekeyed = lineages.iter().map(|l| Prekeyed::of(l)).collect();
        self.batch_prekeyed(prekeyed, options.shared_budget, options.fallback)
    }

    /// Attributes one weighted aggregate lineage (COUNT/SUM/MIN/MAX) under
    /// the configured budget, through the same planning walk and shared
    /// cache as [`Session::attribute`].
    ///
    /// The cache keys aggregate lineages by the canonical Boolean skeleton
    /// *plus* the aggregate kind and the clause weights (permuted into
    /// canonical order), so a `SUM` lineage never serves a `COUNT` hit and
    /// weighted lineages never collide with Boolean ones. If the configured
    /// backend does not advertise the aggregate capability in the backend
    /// registry, the session transparently serves the request with the
    /// registry's first exact aggregate-capable backend (ExaBan) instead of
    /// panicking.
    pub fn attribute_aggregate(
        &mut self,
        lineage: &WeightedDnf,
    ) -> Result<Attribution, Interrupted> {
        self.batch_prekeyed(vec![Prekeyed::of_weighted(lineage)], None, None)
            .pop()
            .expect("one lineage in, one attribution out")
    }

    /// Attributes a batch of weighted aggregate lineages, fanning the work
    /// across the configured thread pool — the aggregate counterpart of
    /// [`Session::attribute_batch`], with the same bit-identical-to-
    /// sequential guarantee at every thread count.
    pub fn attribute_aggregate_batch(
        &mut self,
        lineages: &[&WeightedDnf],
        options: BatchOptions<'_>,
    ) -> Vec<Result<Attribution, Interrupted>> {
        let prekeyed = lineages.iter().map(|l| Prekeyed::of_weighted(l)).collect();
        self.batch_prekeyed(prekeyed, options.shared_budget, options.fallback)
    }

    /// The algorithm that actually serves aggregate lineages for this
    /// session: the configured one when the registry says it is capable,
    /// otherwise the registry's first exact aggregate backend.
    fn effective_aggregate_algorithm(&self) -> Algorithm {
        if self.config.algorithm.supports_aggregates() {
            self.config.algorithm
        } else {
            first_with(Precision::Exact, true)
                .expect("the registry always lists an exact aggregate backend")
                .algorithm
        }
    }

    /// Batch attribution over prekeyed (densely renamed + fingerprinted)
    /// lineages.
    #[allow(clippy::too_many_lines)]
    fn batch_prekeyed(
        &mut self,
        prekeyed: Vec<Prekeyed>,
        shared_budget: Option<&Budget>,
        fallback: Option<&FallbackPolicy>,
    ) -> Vec<Result<Attribution, Interrupted>> {
        let n = prekeyed.len();
        self.stats.attributions += n as u64;
        // Claim the batch's stream indices from the engine-global allocator:
        // within one session the indices are exactly the ones the sequential
        // loop would assign; across sessions they never collide.
        let stream_base = self.streams.fetch_add(n as u64, Ordering::Relaxed);
        if n == 0 {
            return Vec::new();
        }
        // A batch is homogeneous: either every instance is Boolean or every
        // instance carries an aggregate payload (the public entry points
        // build them that way). Aggregate batches may substitute the
        // configured backend with a capable one, so every capability check
        // below reads the *effective* algorithm.
        let aggregate_batch = prekeyed.iter().any(|p| p.weighted.is_some());
        let algorithm = if aggregate_batch {
            self.effective_aggregate_algorithm()
        } else {
            self.config.algorithm
        };
        if aggregate_batch
            && algorithm != self.config.algorithm
            && self.aggregate_attributor.is_none()
        {
            self.aggregate_attributor =
                Some(EngineConfig { algorithm, ..self.config.clone() }.attributor());
        }
        // Randomized backends are never cached: transferring one lineage's
        // samples to another would correlate supposedly independent
        // estimates (see [`crate::Algorithm::cacheable`]).
        let use_cache = self.config.cache.enabled && algorithm.cacheable();

        // Plan, walking the instances in order exactly like the sequential
        // loop would observe the cache. A vacant fingerprint bucket (and no
        // earlier batch instance pending under it) is a definite miss that
        // *skips the canonicalization search entirely*; a contested bucket
        // canonicalizes the instance plus any still-unkeyed residents and
        // settles on the exact key — resolving a pre-existing cache hit
        // immediately, or matching an earlier in-batch instance ("owner")
        // whose freshly compiled result this instance will reuse.
        let mut results: Vec<Option<Result<Attribution, Interrupted>>> =
            (0..n).map(|_| None).collect();
        let mut reuse: Vec<Option<usize>> = vec![None; n];
        let mut jobs: Vec<usize> = Vec::new();
        // The canonical witness of each instance's shape, computed at most
        // once per batch (an instance's witness may be paid for by a *later*
        // instance probing it as a potential in-batch owner).
        let mut my_canon: Vec<Option<Arc<CanonInfo>>> = (0..n).map(|_| None).collect();
        // Witnesses computed for still-unkeyed cache residents, memoized by
        // entry id (the settle step also stores them on the entries, so
        // other sessions never re-pay either).
        let mut resident_canon: HashMap<u64, Arc<CanonInfo>> = HashMap::new();
        // Earlier instances that will insert a fresh entry, by fingerprint.
        let mut pending: HashMap<Fingerprint, Vec<usize>> = HashMap::new();
        // Per-instance canonicalization costs: (steps, searches, skips).
        let mut paid = vec![(0u64, 0u64, 0u64); n];

        // Which instances will pay the individualization search is decidable
        // before the walk: a probe canonicalizes iff its fingerprint bucket
        // is occupied or its fingerprint repeats within the batch, and a
        // contested bucket's still-unkeyed residents canonicalize alongside
        // it. Fan exactly those searches across the pool up front and let
        // the sequential cache-state walk below consume the memoized
        // results: the search is deterministic, so the charged costs,
        // counters, and the resulting plan are bit-identical to computing
        // inline. Skipped under a shared budget, where the walk must charge
        // each descent to the budget in instance order.
        let mut speculated: Vec<Option<(CanonInfo, u64)>> = (0..n).map(|_| None).collect();
        let mut speculated_residents: HashMap<u64, (CanonInfo, u64)> = HashMap::new();
        if use_cache && shared_budget.is_none() && n > 1 {
            let mut fp_count: HashMap<Fingerprint, usize> = HashMap::new();
            for p in &prekeyed {
                *fp_count.entry(p.fingerprint).or_default() += 1;
            }
            let mut peeked: HashMap<Fingerprint, Vec<Resident>> = HashMap::new();
            for p in &prekeyed {
                peeked.entry(p.fingerprint).or_insert_with(|| self.cache.peek(p.fingerprint));
            }
            let mut probe_tasks: Vec<usize> = Vec::new();
            let mut resident_tasks: Vec<(u64, Arc<Shape>)> = Vec::new();
            let mut queued: HashSet<Fingerprint> = HashSet::new();
            for (i, p) in prekeyed.iter().enumerate() {
                let residents = &peeked[&p.fingerprint];
                if fp_count[&p.fingerprint] > 1 || !residents.is_empty() {
                    probe_tasks.push(i);
                }
                if queued.insert(p.fingerprint) {
                    for r in residents {
                        if r.canon.is_none() {
                            resident_tasks.push((r.id, Arc::clone(&r.shape)));
                        }
                    }
                }
            }
            let shapes: Vec<Arc<Shape>> = probe_tasks
                .iter()
                .map(|&i| Arc::clone(&prekeyed[i].shape))
                .chain(resident_tasks.iter().map(|(_, shape)| Arc::clone(shape)))
                .collect();
            if shapes.len() > 1 {
                let computed =
                    self.config.pool().parallel_map(&shapes, |_, shape| shape.canonicalize());
                let mut it = computed.into_iter();
                for &i in &probe_tasks {
                    speculated[i] = it.next();
                }
                for (id, _) in &resident_tasks {
                    if let Some(pair) = it.next() {
                        speculated_residents.insert(*id, pair);
                    }
                }
            }
        }

        for i in 0..n {
            if !use_cache {
                jobs.push(i);
                continue;
            }
            let fp = prekeyed[i].fingerprint;
            let (mut steps, mut searches, mut skips) = (0u64, 0u64, 0u64);
            let mut plan_job = true;
            match self.cache.lookup(fp) {
                Lookup::Vacant => {
                    let mates = pending.get(&fp).cloned().unwrap_or_default();
                    if mates.is_empty() {
                        // Definite miss, nothing in flight: compile without
                        // ever running the individualization search.
                        skips += 1;
                    } else if let Some(mine) = key_probe(
                        &prekeyed,
                        &mut speculated,
                        shared_budget,
                        i,
                        &mut steps,
                        &mut searches,
                    ) {
                        if let Some(j) = find_mate(
                            &prekeyed,
                            &mut my_canon,
                            &mut speculated,
                            shared_budget,
                            &mates,
                            &mine,
                            &mut steps,
                            &mut searches,
                        ) {
                            reuse[i] = Some(j);
                            plan_job = false;
                        }
                        my_canon[i] = Some(mine);
                    }
                    // An interrupted descent (shared budget already drained)
                    // leaves the instance unkeyed: it compiles — and promptly
                    // starves on the same exhausted budget — rather than
                    // stalling the planning walk.
                }
                Lookup::Occupied(residents) => {
                    if let Some(mine) = key_probe(
                        &prekeyed,
                        &mut speculated,
                        shared_budget,
                        i,
                        &mut steps,
                        &mut searches,
                    ) {
                        // Settle against the residents in bucket order,
                        // lazily canonicalizing the unkeyed ones and stopping
                        // at the first exact match.
                        let mut resolved: Vec<(u64, Arc<CanonInfo>)> = Vec::new();
                        for r in &residents {
                            let canon = if let Some(c) = &r.canon {
                                Arc::clone(c)
                            } else if let Some(c) = resident_canon.get(&r.id) {
                                Arc::clone(c)
                            } else {
                                let computed = match speculated_residents.remove(&r.id) {
                                    Some(pair) => Some(pair),
                                    None => match shared_budget {
                                        Some(budget) => r.shape.canonicalize_budgeted(budget).ok(),
                                        None => Some(r.shape.canonicalize()),
                                    },
                                };
                                let Some((info, cost)) = computed else {
                                    // Budget drained mid-descent: stop
                                    // settling; the keys resolved so far
                                    // still count.
                                    break;
                                };
                                steps += cost;
                                searches += 1;
                                let info = Arc::new(info);
                                resident_canon.insert(r.id, Arc::clone(&info));
                                resolved.push((r.id, Arc::clone(&info)));
                                info
                            };
                            if canon.key == mine.key {
                                break;
                            }
                        }
                        match self.cache.finish_lookup(fp, &mine.key, &resolved) {
                            Some(hit) => {
                                self.stats.cache_hits += 1;
                                let mut attribution = cache_hit(prekeyed[i].map_back_via(
                                    &mine,
                                    &hit.canon,
                                    &hit.attribution,
                                ));
                                attribution.stats.canon_steps = steps;
                                attribution.stats.canon_searches = searches;
                                attribution.stats.prekey_skips = skips;
                                results[i] = Some(Ok(attribution));
                                plan_job = false;
                            }
                            None => {
                                let mates = pending.get(&fp).cloned().unwrap_or_default();
                                if let Some(j) = find_mate(
                                    &prekeyed,
                                    &mut my_canon,
                                    &mut speculated,
                                    shared_budget,
                                    &mates,
                                    &mine,
                                    &mut steps,
                                    &mut searches,
                                ) {
                                    reuse[i] = Some(j);
                                    plan_job = false;
                                }
                            }
                        }
                        my_canon[i] = Some(mine);
                    }
                }
            }
            if plan_job {
                jobs.push(i);
                pending.entry(fp).or_default().push(i);
            }
            paid[i] = (steps, searches, skips);
        }
        // Account the canonicalization work: per session (SessionStats), and
        // per engine through the shared cache's counters so the end-to-end
        // serving stats can weigh the keying cost against the hits it buys.
        let (total_steps, total_searches, total_skips) = paid
            .iter()
            .fold((0u64, 0u64, 0u64), |(s, q, k), &(ds, dq, dk)| (s + ds, q + dq, k + dk));
        self.stats.canon_steps += total_steps;
        self.stats.canon_searches += total_searches;
        self.stats.prekey_skips += total_skips;
        if use_cache {
            self.cache.record_canon(total_steps, total_searches, total_skips);
        }

        // Compute the distinct shapes. Deterministic backends fan instances
        // across the pool; the randomized Monte Carlo backend parallelizes
        // *inside* each instance (per-variable seed streams), so its
        // instance loop stays inline rather than nesting pools.
        // The rungs are resolved up front (call override, else configuration)
        // and copied out so the borrow of `self.config` ends before the
        // mutable final-assembly pass.
        let rungs: Vec<Rung> = fallback.unwrap_or(&self.config.fallback).rungs().to_vec();
        let attributor: &dyn Attributor =
            if aggregate_batch && !self.config.algorithm.supports_aggregates() {
                self.aggregate_attributor.as_deref().expect("substitute built above")
            } else {
                self.attributor.as_ref()
            };
        let config = &self.config;
        let attempt = |i: usize, budget: &Budget| match &prekeyed[i].weighted {
            Some(w) => attributor.attribute_aggregate_indexed(w, stream_base + i as u64, budget),
            None => attributor.attribute_indexed(&prekeyed[i].dnf, stream_base + i as u64, budget),
        };
        let run = |i: usize| -> JobOutcome {
            let fresh;
            let budget = match shared_budget {
                Some(shared) => shared,
                None => {
                    fresh = config.budget();
                    &fresh
                }
            };
            if rungs.is_empty() {
                // Strict: identical to the historical path — a panicking
                // worker unwinds through the pool to the caller untouched.
                banzhaf_par::failpoint!("session::compile");
                match attempt(i, budget) {
                    Ok(attribution) => JobOutcome::Done(Box::new(attribution)),
                    Err(Interrupted) => JobOutcome::Starved(budget.steps_used()),
                }
            } else {
                // Under a ladder the batch must survive a panicking worker:
                // the partially built d-tree dies with the unwound stack (it
                // was never shared), and the instance degrades instead of
                // taking the whole batch down with it.
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    banzhaf_par::failpoint!("session::compile");
                    attempt(i, budget)
                }));
                match caught {
                    Ok(Ok(attribution)) => JobOutcome::Done(Box::new(attribution)),
                    Ok(Err(Interrupted)) => JobOutcome::Starved(budget.steps_used()),
                    Err(_) => JobOutcome::Panicked(budget.steps_used()),
                }
            }
        };
        let computed: Vec<JobOutcome> = if algorithm.cacheable() {
            config.pool().parallel_map(&jobs, |_, &i| run(i))
        } else {
            jobs.iter().map(|&i| run(i)).collect()
        };

        // Single-writer merge: only now — with every worker joined — does the
        // session record stats and fold the freshly compiled results into the
        // shared cache (the merge itself is serialized by the cache's brief
        // internal lock; no worker ever computes under it). Only *completed*
        // compilations are inserted: a starved or panicked job's partial
        // d-tree never reaches the cache.
        let mut dense_outcomes: HashMap<usize, JobOutcome> = HashMap::with_capacity(jobs.len());
        for (&i, outcome) in jobs.iter().zip(computed) {
            if let JobOutcome::Done(attribution) = &outcome {
                self.record(attribution);
                if use_cache {
                    banzhaf_par::failpoint!("session::merge");
                    self.cache.insert(
                        prekeyed[i].fingerprint,
                        &prekeyed[i].shape,
                        my_canon[i].clone(),
                        Arc::new((**attribution).clone()),
                    );
                }
            }
            dense_outcomes.insert(i, outcome);
        }
        (0..n)
            .zip(results)
            .map(|(i, early)| {
                if let Some(resolved) = early {
                    return resolved;
                }
                let owner = reuse[i];
                match &dense_outcomes[&owner.unwrap_or(i)] {
                    JobOutcome::Done(attribution) => {
                        let mut mapped = match owner {
                            Some(j) => {
                                let mine =
                                    my_canon[i].as_ref().expect("reusing instances are keyed");
                                let theirs = my_canon[j].as_ref().expect("reused owners are keyed");
                                prekeyed[i].map_back_via(mine, theirs, attribution)
                            }
                            None => prekeyed[i].map_back(attribution),
                        };
                        let (steps, searches, skips) = paid[i];
                        mapped.stats.canon_steps = steps;
                        mapped.stats.canon_searches = searches;
                        mapped.stats.prekey_skips = skips;
                        if owner.is_some() {
                            // An in-batch reuse is a cache hit, same as the
                            // sequential loop would have scored it.
                            self.stats.cache_hits += 1;
                            Ok(cache_hit(mapped))
                        } else {
                            Ok(mapped)
                        }
                    }
                    JobOutcome::Starved(spent) => self.degrade(
                        &prekeyed[i],
                        stream_base + i as u64,
                        shared_budget,
                        &rungs,
                        DegradeReason::BudgetExhausted,
                        *spent,
                        paid[i],
                    ),
                    JobOutcome::Panicked(spent) => self.degrade(
                        &prekeyed[i],
                        stream_base + i as u64,
                        shared_budget,
                        &rungs,
                        DegradeReason::WorkerPanic,
                        *spent,
                        paid[i],
                    ),
                }
            })
            .collect()
    }

    /// Re-attributes one instance down the fallback ladder after its primary
    /// attempt failed.
    ///
    /// Runs inline on the session thread during final assembly: degraded
    /// work is a tail correction under overload, not something to schedule
    /// more workers for. Degraded results are counted in the session stats
    /// but **never inserted into the shared cache**, and in-batch mates never
    /// share one (each failed instance walks its own ladder — transferring a
    /// Monte Carlo estimate between mates would correlate supposedly
    /// independent streams).
    #[allow(clippy::too_many_arguments)]
    fn degrade(
        &mut self,
        prekeyed: &Prekeyed,
        stream: u64,
        shared_budget: Option<&Budget>,
        rungs: &[Rung],
        reason: DegradeReason,
        primary_spent: u64,
        paid: (u64, u64, u64),
    ) -> Result<Attribution, Interrupted> {
        // An explicit cancellation is the client's word, not overload:
        // honour it instead of degrading.
        if rungs.is_empty() || shared_budget.is_some_and(Budget::is_cancelled) {
            return Err(Interrupted);
        }
        let mut spent = primary_spent;
        let mut fallback_steps = 0u64;
        for rung in rungs {
            // An aggregate instance only degrades onto rungs whose backend
            // advertises the aggregate capability in the registry — the
            // standard ladder's interval rung (AdaBan) is skipped and the
            // estimate rung (Monte Carlo) answers.
            if prekeyed.weighted.is_some() && !rung.algorithm.supports_aggregates() {
                continue;
            }
            // The rung inherits whatever wall-clock remains on the request
            // deadline, but never less than its grace allowance — the last
            // rung must be able to answer even when the deadline has already
            // passed. With no deadline the grace alone bounds the rung.
            let timeout = shared_budget
                .and_then(Budget::remaining_time)
                .map_or(rung.grace, |remaining| remaining.max(rung.grace));
            let budget = Budget::new(Some(timeout), rung.max_steps);
            let rung_config = EngineConfig { algorithm: rung.algorithm, ..self.config.clone() };
            let rung_attributor = rung_config.attributor();
            let outcome = catch_unwind(AssertUnwindSafe(|| match &prekeyed.weighted {
                Some(w) => rung_attributor.attribute_aggregate_indexed(w, stream, &budget),
                None => rung_attributor.attribute_indexed(&prekeyed.dnf, stream, &budget),
            }));
            fallback_steps += budget.steps_used();
            if let Ok(Ok(dense)) = outcome {
                let mut attribution = prekeyed.map_back(&dense);
                attribution.degradation =
                    Some(Degradation { rung: rung.algorithm, reason, budget_spent: spent });
                attribution.stats.degraded = true;
                attribution.stats.fallback_steps = fallback_steps;
                let (steps, searches, skips) = paid;
                attribution.stats.canon_steps = steps;
                attribution.stats.canon_searches = searches;
                attribution.stats.prekey_skips = skips;
                self.record(&attribution);
                self.stats.degraded += 1;
                self.stats.fallback_steps += fallback_steps;
                return Ok(attribution);
            }
            spent += budget.steps_used();
        }
        Err(Interrupted)
    }

    /// The `k` facts of a lineage with the largest Banzhaf values.
    ///
    /// Top-k runs bypass the cache: the ranking backends stop refining as
    /// soon as the selection is decided, so their partial results are not
    /// reusable across answers.
    pub fn top_k(&mut self, lineage: &Dnf, k: usize) -> Result<Ranked, Interrupted> {
        let ranked = self.attributor.top_k(lineage, k, &self.config.budget())?;
        self.stats.compile_steps += ranked.stats.compile_steps;
        self.stats.wall += ranked.stats.wall;
        Ok(ranked)
    }

    fn record(&mut self, attribution: &Attribution) {
        self.stats.compile_steps += attribution.stats.compile_steps;
        self.stats.wall += attribution.stats.wall;
    }
}

/// Marks an attribution as served from the cache: the result cost nothing
/// this time around (the compiled tree's node count is kept for reporting).
fn cache_hit(mut attribution: Attribution) -> Attribution {
    attribution.stats.compile_steps = 0;
    attribution.stats.wall = Duration::ZERO;
    attribution.stats.cache_hit = true;
    attribution
}

/// What one compile job produced: a completed attribution (the only outcome
/// that may enter the shared cache), or a failure with the steps the budget
/// had recorded when it surfaced — the degradation ladder reports that spend.
enum JobOutcome {
    Done(Box<Attribution>),
    Starved(u64),
    Panicked(u64),
}

/// Canonicalizes instance `i`'s shape for the planning walk: consuming the
/// speculative memo when the parallel pre-pass already paid for it, charging
/// the shared budget when one is present (`None` means the descent was
/// interrupted and the instance stays unkeyed), and charging the walk's cost
/// counters either way.
fn key_probe(
    prekeyed: &[Prekeyed],
    speculated: &mut [Option<(CanonInfo, u64)>],
    shared_budget: Option<&Budget>,
    i: usize,
    steps: &mut u64,
    searches: &mut u64,
) -> Option<Arc<CanonInfo>> {
    let computed = match speculated[i].take() {
        Some(pair) => Some(pair),
        None => match shared_budget {
            Some(budget) => prekeyed[i].shape.canonicalize_budgeted(budget).ok(),
            None => Some(prekeyed[i].shape.canonicalize()),
        },
    };
    computed.map(|(info, cost)| {
        *steps += cost;
        *searches += 1;
        Arc::new(info)
    })
}

/// Searches the earlier in-batch instances `mates` (pending under the same
/// fingerprint) for one whose canonical key equals `mine`, lazily
/// canonicalizing mates that have not been keyed yet and charging the work to
/// the probing instance — exactly where the sequential loop would pay it.
#[allow(clippy::too_many_arguments)]
fn find_mate(
    prekeyed: &[Prekeyed],
    my_canon: &mut [Option<Arc<CanonInfo>>],
    speculated: &mut [Option<(CanonInfo, u64)>],
    shared_budget: Option<&Budget>,
    mates: &[usize],
    mine: &CanonInfo,
    steps: &mut u64,
    searches: &mut u64,
) -> Option<usize> {
    for &j in mates {
        if my_canon[j].is_none() {
            match key_probe(prekeyed, speculated, shared_budget, j, steps, searches) {
                Some(info) => my_canon[j] = Some(info),
                // An unkeyable mate under a drained budget cannot match.
                None => continue,
            }
        }
        if my_canon[j].as_ref().expect("just keyed").key == mine.key {
            return Some(j);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, CacheConfig};
    use banzhaf_boolean::{Var, VarSet};
    use banzhaf_query::parse_program;

    fn v(i: u32) -> Var {
        Var(i)
    }

    /// A lineage needing Shannon expansion, shifted by a variable offset.
    fn shifted_cycle(offset: u32) -> Dnf {
        Dnf::from_clauses(vec![
            vec![v(offset), v(offset + 1)],
            vec![v(offset + 1), v(offset + 2)],
            vec![v(offset + 2), v(offset + 3)],
            vec![v(offset + 3), v(offset)],
        ])
    }

    #[test]
    fn isomorphic_lineages_share_a_cache_entry() {
        let engine = Engine::new(EngineConfig::default());
        let mut session = engine.session();
        let first = session.attribute(&shifted_cycle(0)).unwrap();
        let second = session.attribute(&shifted_cycle(10)).unwrap();
        assert!(!first.stats.cache_hit);
        assert!(second.stats.cache_hit);
        assert_eq!(session.stats().cache_hits, 1);
        // The values transfer under the variable bijection.
        for i in 0..4 {
            assert_eq!(
                first.value(v(i)).unwrap().exact(),
                second.value(v(10 + i)).unwrap().exact()
            );
        }
        assert_eq!(first.model_count, second.model_count);
    }

    #[test]
    fn cached_results_match_uncached_runs() {
        let engine_cached =
            Engine::new(EngineConfig::default().with_cache_config(CacheConfig::new()));
        let engine_plain =
            Engine::new(EngineConfig::default().with_cache_config(CacheConfig::disabled()));
        let (mut cached, mut plain) = (engine_cached.session(), engine_plain.session());
        for offset in [0, 5, 9] {
            let phi = shifted_cycle(offset);
            let a = cached.attribute(&phi).unwrap();
            let b = plain.attribute(&phi).unwrap();
            assert_eq!(a.exact_values().unwrap(), b.exact_values().unwrap());
            assert_eq!(a.model_count, b.model_count);
        }
        // The cache saved compile work on the repeated shape.
        assert!(cached.stats().compile_steps < plain.stats().compile_steps);
        assert_eq!(cached.stats().cache_hits, 2);
    }

    #[test]
    fn randomized_backends_are_never_cached() {
        // Isomorphic lineages must get independent Monte Carlo samples, not a
        // renamed copy of each other's estimates.
        let engine = Engine::new(
            EngineConfig::new(Algorithm::MonteCarlo).with_cache_config(CacheConfig::new()),
        );
        let mut session = engine.session();
        let first = session.attribute(&shifted_cycle(0)).unwrap();
        let second = session.attribute(&shifted_cycle(10)).unwrap();
        assert!(!second.stats.cache_hit);
        assert_eq!(session.stats().cache_hits, 0);
        // The RNG advanced between the calls, so the (canonical) estimates
        // are drawn from different sample sets.
        let a: Vec<f64> = (0..4).map(|i| first.value(v(i)).unwrap().point()).collect();
        let b: Vec<f64> = (0..4).map(|i| second.value(v(10 + i)).unwrap().point()).collect();
        assert_ne!(a, b, "independent sampling should not reproduce identical estimates");
    }

    #[test]
    fn different_shapes_do_not_collide() {
        let engine = Engine::new(EngineConfig::default());
        let mut session = engine.session();
        let path = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)], vec![v(2), v(3)]]);
        let star = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)], vec![v(0), v(3)]]);
        let a = session.attribute(&path).unwrap();
        let b = session.attribute(&star).unwrap();
        assert!(!b.stats.cache_hit);
        assert_ne!(a.model_count, b.model_count);
        assert_ne!(a.exact_values(), b.exact_values());
    }

    #[test]
    fn relabelled_lineages_hit_regardless_of_label_order() {
        // A 3-path whose middle variable carries the smallest label vs the
        // middle label: first-occurrence renaming keyed these apart (the
        // spurious miss this PR fixes); the refinement-based key must score
        // a hit and transfer the values through the bijection.
        let engine = Engine::new(EngineConfig::default());
        let mut session = engine.session();
        let middle_is_mid = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)]]);
        let middle_is_small = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)]]);
        let a = session.attribute(&middle_is_mid).unwrap();
        let b = session.attribute(&middle_is_small).unwrap();
        assert!(b.stats.cache_hit, "isomorphic labellings must share one cache entry");
        assert_eq!(engine.stats().cache.insertions, 1);
        // The bijection maps middles to middles and ends to ends.
        assert_eq!(a.value(v(1)).unwrap().exact(), b.value(v(0)).unwrap().exact());
        assert_eq!(a.value(v(0)).unwrap().exact(), b.value(v(1)).unwrap().exact());
        assert_eq!(a.model_count, b.model_count);
        assert!(b.stats.canon_steps > 0, "canonicalization cost must be reported");
    }

    #[test]
    fn unused_universe_variables_survive_canonicalization() {
        let phi = Dnf::from_clauses_with_universe(
            vec![vec![v(3), v(7)]],
            VarSet::from_iter([v(3), v(5), v(7)]),
        );
        let engine = Engine::new(EngineConfig::default());
        let mut session = engine.session();
        let att = session.attribute(&phi).unwrap();
        assert_eq!(att.values.len(), 3);
        assert_eq!(att.value(v(5)).unwrap().exact().unwrap().to_u64(), Some(0));
        assert_eq!(att.model_count.as_ref().unwrap().to_u64(), Some(2));
    }

    #[test]
    fn explain_attributes_every_answer() {
        let mut db = Database::new();
        db.add_relation("R", 2);
        db.add_relation("S", 2);
        for x in [1i64, 2] {
            for y in [10i64, 20] {
                db.insert_endogenous("R", vec![x.into(), (y + x).into()]).unwrap();
                db.insert_endogenous("S", vec![(y + x).into(), x.into()]).unwrap();
            }
        }
        let query = parse_program("Q(X) :- R(X, Y), S(Y, X).").unwrap();
        let engine = Engine::new(EngineConfig::default().with_shapley(true));
        let mut session = engine.session();
        let explained = session.explain(&query, &db);
        assert_eq!(explained.answers.len(), 2);
        assert!(explained.is_complete());
        assert_eq!(explained.num_starved(), 0);
        for answer in &explained.answers {
            let attribution = answer.attribution().expect("unlimited budget");
            assert!(attribution.is_exact());
            assert!(attribution.shapley.is_some());
            assert_eq!(attribution.values.len(), answer.lineage.num_vars());
        }
        // The two answers have isomorphic lineages: the second is a hit.
        assert_eq!(session.stats().cache_hits, 1);
    }

    #[test]
    fn explain_keeps_finished_answers_when_one_starves() {
        // Answer 1 has a one-clause lineage; answer 2 joins three R facts
        // with three S facts (a strictly costlier compilation). A step cap
        // between the two starves answer 2 only — the completed work of
        // answer 1 must survive.
        let mut db = Database::new();
        db.add_relation("R", 2);
        db.add_relation("S", 2);
        db.insert_endogenous("R", vec![1.into(), 10.into()]).unwrap();
        db.insert_endogenous("S", vec![10.into(), 0.into()]).unwrap();
        for i in 0..3i64 {
            db.insert_endogenous("R", vec![2.into(), (20 + i).into()]).unwrap();
            db.insert_endogenous("S", vec![(20 + i).into(), 0.into()]).unwrap();
        }
        let query = parse_program("Q(X) :- R(X, Y), S(Y, Z).").unwrap();
        // Probe the two answers' compile costs with an unlimited budget.
        let probe = Engine::new(EngineConfig::default().with_cache_config(CacheConfig::disabled()))
            .session()
            .explain(&query, &db);
        let cost = |i: usize| probe.answers[i].attribution().unwrap().stats.compile_steps;
        assert!(cost(0) + 1 < cost(1), "the probe must order the answers by cost");

        let mut config = EngineConfig::default().with_cache_config(CacheConfig::disabled());
        config.max_steps = Some(cost(0) + 1);
        let explained = Engine::new(config).session().explain(&query, &db);
        assert!(!explained.is_complete());
        assert_eq!(explained.num_starved(), 1);
        assert_eq!(explained.finished().count(), 1);
        assert!(explained.answers[0].outcome.is_ok(), "cheap answer keeps its result");
        assert!(explained.answers[1].outcome.is_err(), "costly answer reports Interrupted");
        assert_eq!(
            explained.answers[0].attribution().unwrap().exact_values(),
            probe.answers[0].attribution().unwrap().exact_values()
        );
    }

    /// Lineages mixing repeated canonical shapes (shifted cycles) with
    /// distinct ones, so batches exercise hits, in-batch reuse and misses.
    fn mixed_batch() -> Vec<Dnf> {
        let mut lineages: Vec<Dnf> = (0..4u32).map(|s| shifted_cycle(s * 10)).collect();
        lineages.push(Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)]]));
        lineages.push(Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)], vec![v(3)]]));
        lineages
    }

    #[test]
    fn batch_is_bit_identical_to_sequential_at_every_thread_count() {
        let lineages = mixed_batch();
        let mut sequential = Engine::new(EngineConfig::default()).session();
        let expected: Vec<Attribution> =
            lineages.iter().map(|l| sequential.attribute(l).unwrap()).collect();
        for threads in [1usize, 2, 4] {
            let engine = Engine::new(EngineConfig::default().with_threads(threads));
            let mut session = engine.session();
            let refs: Vec<&Dnf> = lineages.iter().collect();
            let got = session.attribute_batch(&refs, BatchOptions::default());
            assert_eq!(got.len(), expected.len());
            for (want, have) in expected.iter().zip(&got) {
                let have = have.as_ref().unwrap();
                assert_eq!(want.exact_values().unwrap(), have.exact_values().unwrap());
                assert_eq!(want.model_count, have.model_count);
                assert_eq!(want.stats.cache_hit, have.stats.cache_hit, "threads={threads}");
                assert_eq!(want.stats.compile_steps, have.stats.compile_steps);
            }
            assert_eq!(session.stats().cache_hits, sequential.stats().cache_hits);
            assert_eq!(session.stats().compile_steps, sequential.stats().compile_steps);
            assert_eq!(session.stats().attributions, sequential.stats().attributions);
        }
    }

    #[test]
    fn batch_monte_carlo_streams_match_the_sequential_loop() {
        let lineages = mixed_batch();
        let config = EngineConfig::new(Algorithm::MonteCarlo).with_seed(99);
        let mut sequential = Engine::new(config.clone()).session();
        let expected: Vec<Vec<f64>> = lineages
            .iter()
            .map(|l| {
                let att = sequential.attribute(l).unwrap();
                l.universe().iter().map(|x| att.value(x).unwrap().point()).collect()
            })
            .collect();
        for threads in [1usize, 2, 4] {
            let mut session = Engine::new(config.clone().with_threads(threads)).session();
            let refs: Vec<&Dnf> = lineages.iter().collect();
            let got = session.attribute_batch(&refs, BatchOptions::default());
            for ((lineage, want), have) in lineages.iter().zip(&expected).zip(&got) {
                let have = have.as_ref().unwrap();
                let have: Vec<f64> =
                    lineage.universe().iter().map(|x| have.value(x).unwrap().point()).collect();
                assert_eq!(want, &have, "threads={threads} changed the MC sample set");
            }
        }
    }

    #[test]
    fn shared_budget_interrupts_unfinished_instances_across_workers() {
        let lineages = mixed_batch();
        let refs: Vec<&Dnf> = lineages.iter().collect();
        let engine = Engine::new(
            EngineConfig::default().with_cache_config(CacheConfig::disabled()).with_threads(4),
        );
        // A one-step shared budget: nothing can finish, every instance
        // reports Interrupted, and the call returns (workers joined).
        let mut session = engine.session();
        let starving = Budget::with_max_steps(1);
        let starved =
            session.attribute_batch(&refs, BatchOptions::new().with_shared_budget(&starving));
        assert!(starved.iter().all(Result::is_err));
        // An ample shared budget completes the whole batch.
        let mut session = engine.session();
        let ample = Budget::with_max_steps(1_000_000);
        let done = session.attribute_batch(&refs, BatchOptions::new().with_shared_budget(&ample));
        assert!(done.iter().all(Result::is_ok));
    }

    #[test]
    fn per_instance_step_caps_interrupt_identically_in_batch_and_loop() {
        // A step cap that lets the tiny lineages through but starves the
        // cycles; the Ok/Err pattern must match the sequential loop.
        let lineages = mixed_batch();
        let config = EngineConfig::default().with_cache_config(CacheConfig::disabled());
        let cap = {
            let mut probe = Engine::new(config.clone()).session();
            // Steps the smallest lineage needs (ample budget, read stats).
            probe.attribute(&lineages[4]).unwrap().stats.compile_steps + 1
        };
        let mut config = config;
        config.max_steps = Some(cap);
        let mut sequential = Engine::new(config.clone()).session();
        let expected: Vec<bool> =
            lineages.iter().map(|l| sequential.attribute(l).is_ok()).collect();
        assert!(expected.contains(&true) && expected.contains(&false), "cap splits the batch");
        for threads in [2usize, 4] {
            let mut session = Engine::new(config.clone().with_threads(threads)).session();
            let refs: Vec<&Dnf> = lineages.iter().collect();
            let got: Vec<bool> = session
                .attribute_batch(&refs, BatchOptions::default())
                .iter()
                .map(Result::is_ok)
                .collect();
            assert_eq!(expected, got, "threads={threads}");
        }
    }

    #[test]
    fn monte_carlo_sessions_of_one_engine_draw_disjoint_streams() {
        // Two sessions of one engine attribute isomorphic lineages: with a
        // per-session stream counter both would replay stream 0 and return
        // identical (perfectly correlated) estimates; the engine-global
        // allocator must hand them independent streams.
        let engine = Engine::new(EngineConfig::new(Algorithm::MonteCarlo));
        let first = engine.session().attribute(&shifted_cycle(0)).unwrap();
        let second = engine.session().attribute(&shifted_cycle(10)).unwrap();
        let a: Vec<f64> = (0..4).map(|i| first.value(v(i)).unwrap().point()).collect();
        let b: Vec<f64> = (0..4).map(|i| second.value(v(10 + i)).unwrap().point()).collect();
        assert_ne!(a, b, "sessions must not replay each other's sample streams");
    }

    #[test]
    fn sessions_of_one_engine_share_the_cache() {
        let engine = Engine::new(EngineConfig::default());
        let mut first = engine.session();
        let a = first.attribute(&shifted_cycle(0)).unwrap();
        assert!(!a.stats.cache_hit);
        // A *different* session — and a clone of the engine — both hit the
        // compilation the first session merged.
        let mut second = engine.session();
        let b = second.attribute(&shifted_cycle(10)).unwrap();
        assert!(b.stats.cache_hit, "cross-session reuse through the shared cache");
        let mut third = engine.clone().session();
        let c = third.attribute(&shifted_cycle(20)).unwrap();
        assert!(c.stats.cache_hit, "engine clones point at the same cache");
        for i in 0..4 {
            assert_eq!(a.value(v(i)).unwrap().exact(), b.value(v(10 + i)).unwrap().exact());
            assert_eq!(a.value(v(i)).unwrap().exact(), c.value(v(20 + i)).unwrap().exact());
        }
        let stats = engine.stats().cache;
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn bounded_cache_evicts_but_stays_correct() {
        let engine = Engine::new(
            EngineConfig::default().with_cache_config(CacheConfig::new().with_capacity(1)),
        );
        let mut session = engine.session();
        let path = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)]]);
        let cycle = shifted_cycle(0);
        let first_path = session.attribute(&path).unwrap();
        // The cycle displaces the path (capacity 1), so re-attributing the
        // path recompiles — with identical values.
        session.attribute(&cycle).unwrap();
        let again = session.attribute(&path).unwrap();
        assert!(!again.stats.cache_hit, "evicted shape must recompile");
        assert_eq!(first_path.exact_values(), again.exact_values());
        let stats = engine.stats().cache;
        assert!(stats.evictions >= 1, "capacity 1 must evict: {stats:?}");
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn concurrent_sessions_reuse_each_others_compilations() {
        let engine = Engine::new(EngineConfig::default());
        // Warm the cache from one session, then hammer it from four threads
        // with isomorphic lineages: every attribution is a hit and the values
        // transfer correctly.
        let expected = engine.session().attribute(&shifted_cycle(0)).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let engine = &engine;
                let expected = &expected;
                scope.spawn(move || {
                    let mut session = engine.session();
                    let offset = (t + 1) * 100;
                    let att = session.attribute(&shifted_cycle(offset)).unwrap();
                    assert!(att.stats.cache_hit);
                    for i in 0..4 {
                        assert_eq!(
                            att.value(v(offset + i)).unwrap().exact(),
                            expected.value(v(i)).unwrap().exact()
                        );
                    }
                });
            }
        });
        assert_eq!(engine.stats().cache.hits, 4);
    }

    #[test]
    fn session_topk_dispatches_to_the_backend() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)], vec![v(3)]]);
        let engine = Engine::new(EngineConfig::new(Algorithm::IchiBan).certain());
        let mut session = engine.session();
        let topk = session.top_k(&phi, 2).unwrap();
        assert!(topk.certified);
        assert_eq!(topk.order, vec![v(3), v(0)]);
    }

    #[test]
    fn strict_sessions_still_starve_on_exhausted_budgets() {
        // The default policy must keep the historical bit-identity contract:
        // budget exhaustion is an `Err`, never a silently degraded value.
        let config = EngineConfig { max_steps: Some(1), ..EngineConfig::default() };
        assert!(config.fallback.is_strict());
        let mut session = Engine::new(config).session();
        assert!(session.attribute(&shifted_cycle(0)).is_err());
        assert_eq!(session.stats().degraded, 0);
    }

    #[test]
    fn ladder_degrades_starved_instances_instead_of_failing() {
        use crate::attribution::Score;
        let cycle = shifted_cycle(0);
        let exact = Engine::new(EngineConfig::default()).session().attribute(&cycle).unwrap();
        // One decomposition step starves the exact backend outright; the
        // ladder must still produce an answer.
        let mut config = EngineConfig::default().with_fallback(FallbackPolicy::ladder());
        config.max_steps = Some(1);
        let engine = Engine::new(config);
        let mut session = engine.session();
        let att = session.attribute(&cycle).expect("the ladder resolves what strict starves");
        let degradation = att.degradation.expect("resolved on a fallback rung");
        assert_eq!(degradation.reason, DegradeReason::BudgetExhausted);
        assert!(att.stats.degraded);
        assert_eq!(session.stats().degraded, 1);
        assert!(session.stats().fallback_steps > 0);
        // The degraded score still brackets (interval rung) or estimates
        // (sampling rung) the exact value.
        for x in cycle.universe().iter() {
            let want = exact.value(x).unwrap().exact().unwrap();
            match att.value(x).unwrap() {
                Score::Exact(got) => assert_eq!(*got, want),
                Score::Interval(i) => {
                    assert!(
                        i.lower <= want && want <= i.upper,
                        "degraded interval must bracket the exact value"
                    );
                }
                Score::Estimate(e) => assert!(e.is_finite() && *e >= 0.0),
                Score::Rational(_) => panic!("Boolean ladder rungs never score rationals"),
            }
        }
        // Neither the failed exact compile nor the degraded result may enter
        // the shared cache; an isomorphic retry degrades again, no hit.
        assert_eq!(engine.stats().cache.insertions, 0);
        let again = session.attribute(&shifted_cycle(10)).unwrap();
        assert!(again.degradation.is_some());
        assert!(!again.stats.cache_hit);
        assert_eq!(session.stats().degraded, 2);
    }

    #[test]
    fn batch_ladder_degrades_only_the_starved_instances() {
        // A per-instance cap that lets the tiny lineages through but starves
        // the cycles: completed instances stay exact (and cacheable), the
        // starved ones degrade, and nothing reports `Err`.
        let lineages = mixed_batch();
        let refs: Vec<&Dnf> = lineages.iter().collect();
        let cap = {
            let mut probe = Engine::new(EngineConfig::default()).session();
            probe.attribute(&lineages[4]).unwrap().stats.compile_steps + 1
        };
        let mut config = EngineConfig::default().with_fallback(FallbackPolicy::ladder());
        config.max_steps = Some(cap);
        let mut strict_config = config.clone();
        strict_config.fallback = FallbackPolicy::Strict;
        let strict: Vec<bool> = {
            let mut session = Engine::new(strict_config).session();
            session
                .attribute_batch(&refs, BatchOptions::default())
                .iter()
                .map(Result::is_ok)
                .collect()
        };
        assert!(strict.contains(&false), "cap must starve part of the batch");
        let engine = Engine::new(config);
        let mut session = engine.session();
        let outcomes = session.attribute_batch(&refs, BatchOptions::default());
        for (outcome, strict_ok) in outcomes.iter().zip(&strict) {
            let att = outcome.as_ref().expect("ladder leaves no instance unresolved");
            assert_eq!(
                att.degradation.is_none(),
                *strict_ok,
                "exactly the strict-starved instances degrade"
            );
        }
        assert_eq!(session.stats().degraded, strict.iter().filter(|ok| !**ok).count() as u64);
    }

    #[test]
    fn batch_options_override_the_configured_policy() {
        let mut config = EngineConfig::default().with_fallback(FallbackPolicy::ladder());
        config.max_steps = Some(1);
        let mut session = Engine::new(config).session();
        let cycle = shifted_cycle(0);
        let strict = FallbackPolicy::Strict;
        let outcomes =
            session.attribute_batch(&[&cycle], BatchOptions::new().with_fallback(&strict));
        assert!(outcomes[0].is_err(), "per-call override wins");
    }

    /// A batch where *every* fingerprint bucket is contested: four isomorphic
    /// cycles (one fingerprint, four instances) plus two isomorphic paths,
    /// interleaved — the worst case for the speculative canonicalization
    /// fan-out, since each instance both probes and may key its mates.
    fn contested_heavy_batch() -> Vec<Dnf> {
        let mut lineages = Vec::new();
        for s in 0..4u32 {
            lineages.push(shifted_cycle(s * 10));
            lineages.push(Dnf::from_clauses(vec![
                vec![v(100 + s * 10), v(101 + s * 10)],
                vec![v(101 + s * 10), v(102 + s * 10)],
            ]));
        }
        lineages
    }

    #[test]
    fn contested_heavy_batches_fan_out_with_identical_cost_accounting() {
        // The parallel canonicalization pre-pass must leave the plan — and
        // every charged counter — bit-identical to the sequential walk, even
        // when every bucket is contested and the fan-out covers the whole
        // batch.
        let lineages = contested_heavy_batch();
        let refs: Vec<&Dnf> = lineages.iter().collect();
        let mut sequential = Engine::new(EngineConfig::default().with_threads(1)).session();
        let expected = sequential.attribute_batch(&refs, BatchOptions::default());
        for threads in [2usize, 4] {
            let engine = Engine::new(EngineConfig::default().with_threads(threads));
            let mut session = engine.session();
            let got = session.attribute_batch(&refs, BatchOptions::default());
            for (want, have) in expected.iter().zip(&got) {
                let (want, have) = (want.as_ref().unwrap(), have.as_ref().unwrap());
                assert_eq!(want.exact_values().unwrap(), have.exact_values().unwrap());
                assert_eq!(want.stats.cache_hit, have.stats.cache_hit, "threads={threads}");
                assert_eq!(want.stats.canon_steps, have.stats.canon_steps, "threads={threads}");
                assert_eq!(want.stats.canon_searches, have.stats.canon_searches);
                assert_eq!(want.stats.prekey_skips, have.stats.prekey_skips);
            }
            assert_eq!(session.stats().cache_hits, sequential.stats().cache_hits);
            assert_eq!(session.stats().canon_steps, sequential.stats().canon_steps);
            assert_eq!(session.stats().canon_searches, sequential.stats().canon_searches);
            assert_eq!(session.stats().prekey_skips, sequential.stats().prekey_skips);
        }
    }

    #[test]
    fn sharded_engines_are_bit_identical_to_single_shard() {
        let lineages = mixed_batch();
        let refs: Vec<&Dnf> = lineages.iter().collect();
        let mut single = Engine::new(EngineConfig::default()).session();
        let expected = single.attribute_batch(&refs, BatchOptions::default());
        for shards in [2usize, 4] {
            for threads in [1usize, 2] {
                let engine = Engine::new(
                    EngineConfig::default()
                        .with_cache_config(CacheConfig::new().with_shards(shards))
                        .with_threads(threads),
                );
                assert_eq!(engine.shared_cache().num_shards(), shards);
                let mut session = engine.session();
                let got = session.attribute_batch(&refs, BatchOptions::default());
                for (want, have) in expected.iter().zip(&got) {
                    let (want, have) = (want.as_ref().unwrap(), have.as_ref().unwrap());
                    assert_eq!(
                        want.exact_values().unwrap(),
                        have.exact_values().unwrap(),
                        "shards={shards} threads={threads}"
                    );
                    assert_eq!(want.model_count, have.model_count);
                    assert_eq!(want.stats.cache_hit, have.stats.cache_hit);
                    assert_eq!(want.stats.compile_steps, have.stats.compile_steps);
                }
                assert_eq!(session.stats().cache_hits, single.stats().cache_hits);
                // The aggregate view sums the shards; hits + misses add up
                // across the breakdown exactly as in the single-shard run.
                let snapshot = engine.stats();
                assert_eq!(snapshot.shards.len(), shards);
                let summed: u64 = snapshot.shards.iter().map(|s| s.hits).sum();
                assert_eq!(snapshot.cache.hits, summed);
            }
        }
    }

    #[test]
    fn warm_started_engines_replay_streams_from_the_snapshot() {
        let dir = std::env::temp_dir().join(format!(
            "banzhaf-warmstart-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.bzc");
        let lineages = mixed_batch();
        // Cold run, snapshot on the last engine-clone drop.
        let cold: Vec<Attribution> = {
            let engine = Engine::new(
                EngineConfig::default()
                    .with_cache_config(CacheConfig::new().with_warm_start(&path)),
            );
            let clone = engine.clone();
            let mut session = clone.session();
            let cold = lineages.iter().map(|l| session.attribute(l).unwrap()).collect();
            drop(session);
            drop(engine);
            assert!(!path.exists(), "clone still alive: no snapshot yet");
            drop(clone);
            cold
        };
        assert!(path.exists(), "last engine drop writes the snapshot");
        // A fresh engine warm-starts from it: every shape is a hit, and the
        // values are bit-identical to the cold run.
        let engine = Engine::new(
            EngineConfig::default().with_cache_config(CacheConfig::new().with_warm_start(&path)),
        );
        let stats = engine.stats().cache;
        assert_eq!(stats.snapshot_loads, 1);
        assert!(stats.snapshot_entries > 0);
        assert_eq!(stats.snapshot_rejects, 0);
        let mut session = engine.session();
        for (lineage, want) in lineages.iter().zip(&cold) {
            let have = session.attribute(lineage).unwrap();
            assert!(have.stats.cache_hit, "warm-started shape must hit");
            assert_eq!(have.stats.compile_steps, 0);
            assert_eq!(want.exact_values().unwrap(), have.exact_values().unwrap());
            assert_eq!(want.model_count, have.model_count);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
