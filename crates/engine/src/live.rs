//! Incremental attribution under live database updates.
//!
//! A [`LiveSession`] owns a [`Database`] plus the last [`QueryAttribution`]
//! per registered query, and exposes [`LiveSession::apply_update`]: on a
//! single-fact insert or delete, only the answers whose lineage actually
//! mentions the touched fact's variable are re-derived and re-attributed.
//!
//! The delta path combines three reuse levers:
//!
//! * an inverted var → answer index (built at registration, maintained per
//!   update) narrows a deletion to the answers that mention the deleted
//!   fact's variable — every other answer is untouched, by construction;
//! * deletions never re-run the query: the new lineage is
//!   [`Dnf::condition`]`(v, false)` restricted to its used variables, which
//!   is definitionally the lineage a fresh evaluation of the shrunken
//!   database would build;
//! * insertions re-run the backtracking join only with the new fact *pinned*
//!   ([`banzhaf_query::delta_groundings`]), merging the delta clauses into
//!   the affected answers' lineages;
//!
//! and re-attribution flows through the ordinary [`Session`] batch path, so
//! every untouched shape stays warm in the engine's `SharedCache` — resolved
//! by its cheap isomorphism-invariant fingerprint first, with the exact
//! canonical key only computed where fingerprints collide — and a touched
//! answer whose *shape* is unchanged (common under isomorphism-heavy
//! workloads) costs a cache hit instead of a compilation.
//! Results are bit-identical to evaluating and attributing the updated
//! database from scratch.

use crate::attribution::Attribution;
use crate::session::{AnswerAttribution, BatchOptions, QueryAttribution, Session, SessionStats};
use crate::Engine;
use banzhaf::Interrupted;
use banzhaf_boolean::{Dnf, Var};
use banzhaf_db::{Database, DbError, FactId, Update, Value};
use banzhaf_query::{delta_groundings, evaluate, UnionQuery};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::time::{Duration, Instant};

impl Engine {
    /// Starts a [`LiveSession`] owning `db`.
    ///
    /// The live session shares the engine's cross-session cache (and its
    /// sample-stream allocator) like any other [`Session`], so attributions
    /// performed while maintaining registered queries warm the cache for
    /// every other session of the engine, and vice versa.
    pub fn live_session(&self, db: Database) -> LiveSession {
        LiveSession {
            session: self.session(),
            db,
            queries: Vec::new(),
            stats: LiveStats::default(),
        }
    }
}

/// Cumulative statistics of a [`LiveSession`]'s update stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct LiveStats {
    /// Updates applied.
    pub updates: u64,
    /// Insertions among them.
    pub inserts: u64,
    /// Deletions among them.
    pub deletes: u64,
    /// Answers re-attributed (added or updated) across all updates.
    pub answers_touched: u64,
    /// Answers removed because their lineage became unsatisfiable.
    pub answers_removed: u64,
    /// Answers left untouched across all updates (the delta path's win:
    /// each would have been re-attributed by a cold re-evaluation).
    pub answers_untouched: u64,
    /// Compile steps actually paid inside [`LiveSession::apply_update`].
    pub update_compile_steps: u64,
    /// Cache hits scored by update re-attributions.
    pub update_cache_hits: u64,
    /// Estimated compile steps saved by *not* re-attributing untouched
    /// answers: the sum of each untouched answer's last observed full
    /// compilation cost (for answers only ever served from the cache, the
    /// compiled tree's node count stands in as the estimate).
    pub update_steps_saved: u64,
}

/// How one answer changed under an update.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnswerChange {
    /// The answer did not exist before the update.
    Added,
    /// The answer's lineage gained or lost clauses and was re-attributed.
    Updated,
    /// The answer's lineage became unsatisfiable and the answer disappeared.
    Removed,
}

/// One answer re-derived by an update.
#[derive(Clone, Debug)]
pub struct TouchedAnswer {
    /// The registered query the answer belongs to.
    pub query: String,
    /// The answer tuple.
    pub tuple: Vec<Value>,
    /// What happened to it.
    pub change: AnswerChange,
}

/// The result of applying one [`Update`]: which answers were re-derived and
/// what the delta path paid — and saved — doing so.
#[derive(Clone, Debug)]
pub struct UpdateReport {
    /// The update that was applied.
    pub update: Update,
    /// The id of the inserted or deleted fact (its lineage variable is
    /// `Var(fact.0)`).
    pub fact: FactId,
    /// The answers re-derived by this update, in (query, tuple) order.
    pub touched: Vec<TouchedAnswer>,
    /// Registered answers left untouched (their attributions — and their
    /// canonical shapes in the shared cache — were reused as-is).
    pub untouched: u64,
    /// Compile steps paid re-attributing the touched answers.
    pub compile_steps: u64,
    /// Cache hits scored while re-attributing the touched answers.
    pub cache_hits: u64,
    /// Estimated compile steps a cold re-attribution of the untouched
    /// answers would have paid (see [`LiveStats::update_steps_saved`]).
    pub steps_saved: u64,
    /// Wall-clock time spent applying the update.
    pub wall: Duration,
}

/// The last known state of one answer of a registered query.
struct LiveAnswer {
    lineage: Dnf,
    outcome: Result<Attribution, Interrupted>,
    /// The compile steps a cold attribution of this answer would pay: the
    /// cost observed when the answer's shape was last compiled, or the
    /// compiled tree's node count when it was served from the cache.
    cold_cost: u64,
}

impl LiveAnswer {
    fn new(lineage: Dnf, outcome: Result<Attribution, Interrupted>) -> Self {
        let cold_cost = match &outcome {
            Ok(attribution) if attribution.stats.cache_hit => attribution.stats.dtree_nodes as u64,
            Ok(attribution) => attribution.stats.compile_steps,
            Err(_) => 0,
        };
        LiveAnswer { lineage, outcome, cold_cost }
    }
}

/// One registered query: its answers and the inverted var → answer index.
struct LiveQuery {
    name: String,
    query: UnionQuery,
    /// Answer tuple → last known lineage and attribution, ordered by tuple
    /// (the evaluator's deterministic answer order).
    answers: BTreeMap<Vec<Value>, LiveAnswer>,
    /// Lineage variable → the answers whose lineage mentions it.
    by_var: HashMap<Var, BTreeSet<Vec<Value>>>,
}

impl LiveQuery {
    /// Inserts (or replaces) an answer, maintaining the inverted index.
    fn put(&mut self, tuple: Vec<Value>, lineage: Dnf, outcome: Result<Attribution, Interrupted>) {
        self.unindex(&tuple);
        // A registered lineage's universe is exactly its used variables (the
        // evaluator and the delta path both maintain this), so indexing the
        // universe indexes every mentioned variable.
        for var in lineage.universe().iter() {
            self.by_var.entry(var).or_default().insert(tuple.clone());
        }
        self.answers.insert(tuple, LiveAnswer::new(lineage, outcome));
    }

    /// Removes an answer and its index entries.
    fn remove(&mut self, tuple: &[Value]) {
        self.unindex(tuple);
        self.answers.remove(tuple);
    }

    /// Drops the index entries of the answer's current lineage, if any.
    fn unindex(&mut self, tuple: &[Value]) {
        let Some(existing) = self.answers.get(tuple) else {
            return;
        };
        for var in existing.lineage.universe().iter() {
            if let Some(tuples) = self.by_var.get_mut(&var) {
                tuples.remove(tuple);
                if tuples.is_empty() {
                    self.by_var.remove(&var);
                }
            }
        }
    }

    /// The current per-answer attribution state, in answer-tuple order.
    fn snapshot(&self) -> QueryAttribution {
        let answers = self
            .answers
            .iter()
            .map(|(tuple, answer)| AnswerAttribution {
                tuple: tuple.clone(),
                lineage: answer.lineage.clone(),
                outcome: answer.outcome.clone(),
            })
            .collect();
        QueryAttribution { answers }
    }
}

/// A stateful session for attribution under live updates: owns the database
/// and keeps every registered query's per-answer attribution current as
/// single-fact updates are applied, re-deriving only the answers an update
/// actually touches. [`LiveSession::apply_update`] documents the delta
/// strategy.
///
/// ```
/// use banzhaf_engine::{Engine, EngineConfig};
/// use banzhaf_db::{Database, Update};
/// use banzhaf_query::parse_program;
///
/// let mut db = Database::new();
/// db.add_relation("R", 1);
/// db.add_relation("S", 2);
/// db.insert_endogenous("R", vec![1.into()]).unwrap();
/// db.insert_endogenous("S", vec![1.into(), 2.into()]).unwrap();
///
/// let engine = Engine::new(EngineConfig::default());
/// let mut live = engine.live_session(db);
/// live.register("q", parse_program("Q() :- R(X), S(X, Y).").unwrap());
///
/// let report = live.apply_update(Update::insert("S", vec![1.into(), 3.into()])).unwrap();
/// assert_eq!(report.touched.len(), 1);
/// let snapshot = live.attribution("q").unwrap();
/// let attribution = snapshot.answers[0].attribution().unwrap();
/// assert_eq!(attribution.model_count.as_ref().unwrap().to_u64(), Some(3));
/// ```
pub struct LiveSession {
    session: Session,
    db: Database,
    queries: Vec<LiveQuery>,
    stats: LiveStats,
}

impl LiveSession {
    /// The current database state.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The cumulative update statistics.
    pub fn stats(&self) -> &LiveStats {
        &self.stats
    }

    /// The statistics of the underlying attribution session (registration
    /// and update re-attributions included).
    pub fn session_stats(&self) -> &SessionStats {
        self.session.stats()
    }

    /// The names of the registered queries, in registration order.
    pub fn query_names(&self) -> Vec<&str> {
        self.queries.iter().map(|q| q.name.as_str()).collect()
    }

    /// Registers a query: evaluates it against the current database,
    /// attributes every answer, builds the inverted var → answer index, and
    /// returns the initial attribution snapshot.
    ///
    /// # Panics
    /// Panics if a query with the same name is already registered (names are
    /// programmer controlled, like relation names in [`Database`]).
    pub fn register(&mut self, name: impl Into<String>, query: UnionQuery) -> QueryAttribution {
        let name = name.into();
        assert!(self.queries.iter().all(|q| q.name != name), "query {name} is already registered");
        let raw = evaluate(&query, &self.db).into_answers();
        let lineages: Vec<&Dnf> = raw.iter().map(|a| &a.lineage).collect();
        let outcomes = self.session.attribute_batch(&lineages, BatchOptions::default());
        let mut live = LiveQuery { name, query, answers: BTreeMap::new(), by_var: HashMap::new() };
        for (answer, outcome) in raw.into_iter().zip(outcomes) {
            live.put(answer.tuple, answer.lineage, outcome);
        }
        let snapshot = live.snapshot();
        self.queries.push(live);
        snapshot
    }

    /// The current attribution snapshot of a registered query.
    pub fn attribution(&self, name: &str) -> Option<QueryAttribution> {
        self.queries.iter().find(|q| q.name == name).map(LiveQuery::snapshot)
    }

    /// Applies a single-fact update to the database and incrementally
    /// re-derives exactly the registered answers the update touches.
    ///
    /// For a deletion, the touched answers are read off the inverted index
    /// (the answers whose lineage mentions the deleted fact's variable); no
    /// query is re-evaluated, each new lineage is obtained by conditioning
    /// the old one. For an insertion, the backtracking join re-runs with the
    /// new fact pinned, contributing delta clauses to existing and new
    /// answers. Either way the touched lineages are re-attributed through
    /// the ordinary batch path — untouched canonical shapes stay warm in the
    /// shared cache — and the resulting state is bit-identical to evaluating
    /// and attributing the updated database from scratch.
    pub fn apply_update(&mut self, update: Update) -> Result<UpdateReport, DbError> {
        let start = Instant::now();
        banzhaf_par::failpoint!("live::apply_update");
        let steps_before = self.session.stats().compile_steps;
        let hits_before = self.session.stats().cache_hits;
        let id = self.db.apply_update(&update)?;

        // Stage the touched answers: (query index, tuple, new lineage,
        // change), in deterministic (query, tuple) order.
        let mut staged: Vec<(usize, Vec<Value>, Dnf, AnswerChange)> = Vec::new();
        if update.is_insert() {
            for (qi, q) in self.queries.iter().enumerate() {
                let mut merged: BTreeMap<Vec<Value>, Vec<Vec<Var>>> = BTreeMap::new();
                for (tuple, clause) in delta_groundings(&q.query, &self.db, id) {
                    merged.entry(tuple).or_default().push(clause);
                }
                for (tuple, clauses) in merged {
                    let delta = Dnf::from_clauses(clauses);
                    match q.answers.get(&tuple) {
                        Some(old) => {
                            staged.push((qi, tuple, old.lineage.or(&delta), AnswerChange::Updated));
                        }
                        None => staged.push((qi, tuple, delta, AnswerChange::Added)),
                    }
                }
            }
        } else {
            let var = Var(id.0);
            for (qi, q) in self.queries.iter().enumerate() {
                let Some(tuples) = q.by_var.get(&var) else { continue };
                for tuple in tuples {
                    let old = &q.answers[tuple];
                    // Conditioning drops the clauses using the deleted fact;
                    // restricting to the used variables drops the orphans, so
                    // the result is exactly the lineage a fresh evaluation of
                    // the shrunken database would build.
                    let lineage = old.lineage.condition(var, false).restrict_to_used();
                    let change = if lineage.is_false() {
                        AnswerChange::Removed
                    } else {
                        AnswerChange::Updated
                    };
                    staged.push((qi, tuple.clone(), lineage, change));
                }
            }
        }

        // Re-attribute every surviving touched lineage in one batch (cache
        // hits for unchanged canonical shapes), then write back.
        let jobs: Vec<usize> =
            (0..staged.len()).filter(|&i| staged[i].3 != AnswerChange::Removed).collect();
        let lineages: Vec<&Dnf> = jobs.iter().map(|&i| &staged[i].2).collect();
        let outcomes = self.session.attribute_batch(&lineages, BatchOptions::default());
        let mut outcomes = outcomes.into_iter();
        let mut touched = Vec::with_capacity(staged.len());
        let mut touched_keys: HashSet<(usize, Vec<Value>)> = HashSet::new();
        for (qi, tuple, lineage, change) in staged {
            let q = &mut self.queries[qi];
            if change == AnswerChange::Removed {
                q.remove(&tuple);
            } else {
                let outcome = outcomes.next().expect("one outcome per staged job");
                q.put(tuple.clone(), lineage, outcome);
                touched_keys.insert((qi, tuple.clone()));
            }
            touched.push(TouchedAnswer { query: q.name.clone(), tuple, change });
        }

        // Account what the delta path skipped: every untouched answer would
        // have been re-attributed by a cold re-evaluation of the updated
        // database.
        let mut untouched = 0u64;
        let mut steps_saved = 0u64;
        for (qi, q) in self.queries.iter().enumerate() {
            for (tuple, answer) in &q.answers {
                if !touched_keys.contains(&(qi, tuple.clone())) {
                    untouched += 1;
                    steps_saved += answer.cold_cost;
                }
            }
        }

        let compile_steps = self.session.stats().compile_steps - steps_before;
        let cache_hits = self.session.stats().cache_hits - hits_before;
        self.stats.updates += 1;
        if update.is_insert() {
            self.stats.inserts += 1;
        } else {
            self.stats.deletes += 1;
        }
        self.stats.answers_touched += touched_keys.len() as u64;
        self.stats.answers_removed +=
            touched.iter().filter(|t| t.change == AnswerChange::Removed).count() as u64;
        self.stats.answers_untouched += untouched;
        self.stats.update_compile_steps += compile_steps;
        self.stats.update_cache_hits += cache_hits;
        self.stats.update_steps_saved += steps_saved;

        Ok(UpdateReport {
            update,
            fact: id,
            touched,
            untouched,
            compile_steps,
            cache_hits,
            steps_saved,
            wall: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use banzhaf_query::parse_program;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.add_relation("R", 2);
        db.add_relation("S", 2);
        for (a, b) in [(1, 10), (1, 20), (2, 30)] {
            db.insert_endogenous("R", vec![a.into(), b.into()]).unwrap();
        }
        for (b, c) in [(10, 1), (20, 1), (30, 1)] {
            db.insert_endogenous("S", vec![b.into(), c.into()]).unwrap();
        }
        db
    }

    /// Asserts the live snapshot of `query` is bit-identical to a cold
    /// evaluation + attribution of the live session's current database.
    fn assert_matches_cold(live: &LiveSession, name: &str, query: &str) {
        let query = parse_program(query).unwrap();
        let cold_engine =
            Engine::new(EngineConfig::default().with_cache_config(crate::CacheConfig::disabled()));
        let cold = cold_engine.session().explain(&query, live.db());
        let snapshot = live.attribution(name).unwrap();
        assert_eq!(snapshot.answers.len(), cold.answers.len());
        for (have, want) in snapshot.answers.iter().zip(&cold.answers) {
            assert_eq!(have.tuple, want.tuple);
            assert_eq!(have.lineage, want.lineage);
            let (have, want) = (have.attribution().unwrap(), want.attribution().unwrap());
            assert_eq!(have.exact_values(), want.exact_values());
            assert_eq!(have.model_count, want.model_count);
        }
    }

    const Q: &str = "Q(X) :- R(X, Y), S(Y, Z).";

    #[test]
    fn updates_track_cold_reevaluation_bit_for_bit() {
        let engine = Engine::new(EngineConfig::default());
        let mut live = engine.live_session(sample_db());
        let initial = live.register("q", parse_program(Q).unwrap());
        assert_eq!(initial.answers.len(), 2);
        assert_matches_cold(&live, "q", Q);

        // Insert: a new S fact adds a clause to the existing answer 1.
        let report = live.apply_update(Update::insert("S", vec![20.into(), 2.into()])).unwrap();
        assert_eq!(report.touched.len(), 1);
        assert_eq!(report.touched[0].change, AnswerChange::Updated);
        assert_eq!(report.untouched, 1);
        assert_matches_cold(&live, "q", Q);

        // Insert: a new R fact creates a brand-new answer.
        let report = live.apply_update(Update::insert("R", vec![7.into(), 30.into()])).unwrap();
        assert_eq!(report.touched.len(), 1);
        assert_eq!(report.touched[0].change, AnswerChange::Added);
        assert_matches_cold(&live, "q", Q);

        // Delete: answer 2 loses its only grounding and disappears; answer 7
        // (sharing the S(30, 1) fact) is re-derived, answer 1 is untouched.
        let report = live.apply_update(Update::delete("S", vec![30.into(), 1.into()])).unwrap();
        let changes: Vec<AnswerChange> = report.touched.iter().map(|t| t.change).collect();
        assert_eq!(changes, vec![AnswerChange::Removed, AnswerChange::Removed]);
        assert_eq!(report.untouched, 1);
        assert_matches_cold(&live, "q", Q);

        // Delete: answer 1 loses one of its three clauses.
        let report = live.apply_update(Update::delete("R", vec![1.into(), 10.into()])).unwrap();
        assert_eq!(report.touched.len(), 1);
        assert_eq!(report.touched[0].change, AnswerChange::Updated);
        assert_matches_cold(&live, "q", Q);

        let stats = live.stats();
        assert_eq!(stats.updates, 4);
        assert_eq!(stats.inserts, 2);
        assert_eq!(stats.deletes, 2);
        assert_eq!(stats.answers_removed, 2);
        assert!(stats.answers_untouched >= 2);
    }

    #[test]
    fn untouched_updates_perform_zero_compile_steps() {
        let engine = Engine::new(EngineConfig::default());
        let mut live = engine.live_session(sample_db());
        live.register("q", parse_program(Q).unwrap());
        // An insert into a relation region joining with nothing: the pinned
        // delta search finds no groundings, so nothing is re-attributed.
        let report = live.apply_update(Update::insert("S", vec![99.into(), 1.into()])).unwrap();
        assert!(report.touched.is_empty());
        assert_eq!(report.compile_steps, 0);
        assert_eq!(report.untouched, 2);
        assert!(report.steps_saved > 0, "skipping the whole corpus must be visible");
        // Deleting it again touches nothing either: its variable never made
        // it into any lineage, so the inverted index finds no answers.
        let report = live.apply_update(Update::delete("S", vec![99.into(), 1.into()])).unwrap();
        assert!(report.touched.is_empty());
        assert_eq!(report.compile_steps, 0);
        assert_matches_cold(&live, "q", Q);
    }

    #[test]
    fn updates_cover_every_registered_query() {
        let engine = Engine::new(EngineConfig::default());
        let mut live = engine.live_session(sample_db());
        live.register("q1", parse_program(Q).unwrap());
        live.register("q2", parse_program("P(Y) :- R(X, Y).").unwrap());
        assert_eq!(live.query_names(), vec!["q1", "q2"]);
        let report = live.apply_update(Update::insert("R", vec![1.into(), 30.into()])).unwrap();
        let queries: BTreeSet<&str> = report.touched.iter().map(|t| t.query.as_str()).collect();
        assert_eq!(queries, BTreeSet::from(["q1", "q2"]));
        assert_matches_cold(&live, "q1", Q);
        assert_matches_cold(&live, "q2", "P(Y) :- R(X, Y).");
    }

    #[test]
    fn invalid_updates_are_rejected_and_change_nothing() {
        let engine = Engine::new(EngineConfig::default());
        let mut live = engine.live_session(sample_db());
        live.register("q", parse_program(Q).unwrap());
        let err = live.apply_update(Update::delete("R", vec![77.into(), 77.into()])).unwrap_err();
        assert!(matches!(err, DbError::UnknownFact(_)));
        let err = live.apply_update(Update::insert("Nope", vec![1.into()])).unwrap_err();
        assert!(matches!(err, DbError::UnknownRelation(_)));
        assert_eq!(live.stats().updates, 0);
        assert_matches_cold(&live, "q", Q);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_registration_panics() {
        let engine = Engine::new(EngineConfig::default());
        let mut live = engine.live_session(sample_db());
        live.register("q", parse_program(Q).unwrap());
        live.register("q", parse_program(Q).unwrap());
    }
}
