//! The attribution service: worker threads behind a bounded request queue.

use banzhaf_boolean::Dnf;
use banzhaf_dtree::Budget;
use banzhaf_engine::{Attribution, CacheStats, Engine, EngineConfig};
use banzhaf_par::queue::{BoundedQueue, PushError};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of an [`AttributionService`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The engine configuration every worker session runs (algorithm, ε,
    /// shared-cache capacity, …). Worker sessions share one engine, hence one
    /// cross-session cache.
    pub engine: EngineConfig,
    /// Worker threads draining the request queue (`0` = one per available
    /// CPU). Each worker owns its own engine session; requests run one per
    /// worker at a time, so this is the service's concurrency level.
    pub workers: usize,
    /// Capacity of the bounded request queue. A submit against a full queue
    /// is *rejected* with [`Rejected::QueueFull`] — backpressure is explicit
    /// and immediate, never an unbounded buffer.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own
    /// ([`RequestOptions::timeout`]). Measured from submission, so time spent
    /// queued counts against it.
    pub default_timeout: Option<Duration>,
    /// Step cap applied to requests that do not carry their own.
    pub default_max_steps: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            engine: EngineConfig::default(),
            workers: 2,
            queue_capacity: 64,
            default_timeout: None,
            default_max_steps: None,
        }
    }
}

impl ServeConfig {
    /// A serving configuration around the given engine configuration.
    pub fn new(engine: EngineConfig) -> Self {
        ServeConfig { engine, ..ServeConfig::default() }
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the request-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the default per-request deadline.
    pub fn with_default_timeout(mut self, timeout: Duration) -> Self {
        self.default_timeout = Some(timeout);
        self
    }

    /// Sets the default per-request step cap.
    pub fn with_default_max_steps(mut self, max_steps: u64) -> Self {
        self.default_max_steps = Some(max_steps);
        self
    }
}

/// Per-request overrides of the service's default budget.
#[derive(Clone, Copy, Debug, Default)]
pub struct RequestOptions {
    /// Deadline for this request, from submission (overrides the default).
    pub timeout: Option<Duration>,
    /// Step cap for this request (overrides the default).
    pub max_steps: Option<u64>,
}

/// Why a submission was refused. Typed so callers can shed load
/// ([`Rejected::QueueFull`]) or stop submitting ([`Rejected::ShutDown`])
/// without string matching.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rejected {
    /// The bounded request queue is at capacity; retry later or shed load.
    QueueFull {
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// The service is shutting down and accepts no further requests.
    ShutDown,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "request queue is full (capacity {capacity})")
            }
            Rejected::ShutDown => write!(f, "service is shut down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Why an accepted request failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServeError {
    /// The request's budget (deadline or step cap) was exhausted — either
    /// while queued or cooperatively mid-attribution. The shared cache is
    /// never poisoned by an interrupted request: only completed attributions
    /// are merged.
    Interrupted,
    /// The request was cancelled through [`Ticket::cancel`] (while queued or
    /// cooperatively mid-compile).
    Cancelled,
    /// The service shut down before the request ran.
    ShutDown,
    /// The attribution backend panicked while serving the request. The
    /// worker caught the panic, discarded its session, and kept serving;
    /// nothing partial reached the shared cache.
    Failed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Interrupted => write!(f, "request exceeded its budget"),
            ServeError::Cancelled => write!(f, "request was cancelled"),
            ServeError::ShutDown => write!(f, "service shut down before the request ran"),
            ServeError::Failed => write!(f, "attribution backend panicked while serving"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The outcome a [`Ticket`] resolves to.
pub type ServeResult = Result<Attribution, ServeError>;

struct Completion {
    outcome: Option<ServeResult>,
    waker: Option<Waker>,
}

/// State shared between a [`Ticket`] and the worker serving its request.
struct RequestShared {
    /// The request's cooperative budget: deadline/step caps mapped onto the
    /// shared atomic [`Budget`], and the cancellation flag the ticket sets.
    budget: Budget,
    done: Mutex<Completion>,
}

impl RequestShared {
    fn complete(&self, outcome: ServeResult) {
        let waker = {
            let mut done = self.done.lock().expect("completion lock poisoned");
            debug_assert!(done.outcome.is_none(), "request completed twice");
            done.outcome = Some(outcome);
            done.waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// A pending response: a [`Future`] resolving to the request's
/// [`ServeResult`], plus out-of-band cancellation.
///
/// Consume it with [`crate::block_on`], combine batches with
/// [`crate::join_all`], or poll it from any executor. Dropping the ticket
/// abandons the response (the request itself still runs unless cancelled
/// first).
pub struct Ticket {
    shared: Arc<RequestShared>,
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket")
            .field("done", &self.is_done())
            .field("cancelled", &self.shared.budget.is_cancelled())
            .finish()
    }
}

impl Ticket {
    /// Cancels the request: a queued request never runs, an in-flight one is
    /// interrupted cooperatively (its workers observe the cancellation at the
    /// next budget check, typically within tens of microseconds). The ticket
    /// then resolves to [`ServeError::Cancelled`].
    ///
    /// Cancelling a request that already completed has no effect.
    pub fn cancel(&self) {
        self.shared.budget.cancel();
    }

    /// `true` once the response has been produced (the future would resolve
    /// immediately).
    pub fn is_done(&self) -> bool {
        self.shared.done.lock().expect("completion lock poisoned").outcome.is_some()
    }

    /// Blocks the calling thread until the response arrives.
    pub fn wait(self) -> ServeResult {
        crate::block_on(self)
    }
}

impl Future for Ticket {
    type Output = ServeResult;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<ServeResult> {
        let mut done = self.shared.done.lock().expect("completion lock poisoned");
        match done.outcome.take() {
            Some(outcome) => Poll::Ready(outcome),
            None => {
                done.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

struct Job {
    lineage: Dnf,
    shared: Arc<RequestShared>,
}

#[derive(Default)]
struct ServiceCounters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    in_flight: AtomicU64,
}

/// A point-in-time snapshot of a service's request counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Submissions refused ([`Rejected::QueueFull`] backpressure).
    pub rejected: u64,
    /// Requests completed with an attribution.
    pub completed: u64,
    /// Requests failed (interrupted, cancelled, or shut down).
    pub failed: u64,
    /// Requests currently executing on a worker.
    pub in_flight: u64,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// The service's worker count.
    pub workers: usize,
}

/// The async attribution front end: a bounded request queue drained by worker
/// threads that run engine sessions over one shared cross-session cache.
///
/// * **Backpressure**: [`AttributionService::submit`] never blocks and never
///   buffers unboundedly — a full queue is a typed [`Rejected::QueueFull`].
/// * **Budgets**: every request gets its own [`Budget`] (deadline from
///   submission + step cap), the same cooperative mechanism the batch engine
///   uses, so a deadline expiring mid-compile interrupts all threads working
///   on that request at once.
/// * **Cancellation**: [`Ticket::cancel`] flips the budget's cancellation
///   flag; queued requests never start, in-flight ones stop at the next
///   budget check.
/// * **Shared cache**: workers are sessions of one [`Engine`], so a lineage
///   shape compiled for any request is a cache hit for every later request,
///   across all client sessions ([`AttributionService::cache_stats`]).
///
/// ```
/// use banzhaf_boolean::{Dnf, Var};
/// use banzhaf_serve::{AttributionService, ServeConfig};
///
/// let service = AttributionService::start(ServeConfig::default().with_workers(2));
/// let phi = Dnf::from_clauses(vec![vec![Var(0), Var(1)], vec![Var(2)]]);
/// let ticket = service.submit(phi).unwrap();
/// let attribution = ticket.wait().unwrap();
/// assert_eq!(attribution.model_count.as_ref().unwrap().to_u64(), Some(5));
/// ```
pub struct AttributionService {
    engine: Engine,
    queue: Arc<BoundedQueue<Job>>,
    counters: Arc<ServiceCounters>,
    workers: Vec<JoinHandle<()>>,
    default_timeout: Option<Duration>,
    default_max_steps: Option<u64>,
}

impl AttributionService {
    /// Starts the service: spawns the worker threads and returns the handle
    /// used to submit requests.
    pub fn start(config: ServeConfig) -> Self {
        let engine = Engine::new(config.engine.clone());
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity.max(1)));
        let counters = Arc::new(ServiceCounters::default());
        // Workers are deliberately *not* clamped to the core count: extra
        // serve workers buy latency isolation (a long request does not
        // head-of-line-block the queue), not throughput.
        let worker_count = if config.workers == 0 {
            banzhaf_par::ThreadPool::new(0).threads()
        } else {
            config.workers
        };
        let workers = (0..worker_count)
            .map(|index| {
                let queue = Arc::clone(&queue);
                let counters = Arc::clone(&counters);
                let worker_engine = engine.clone();
                std::thread::Builder::new()
                    .name(format!("banzhaf-serve-{index}"))
                    .spawn(move || {
                        let mut session = worker_engine.session();
                        while let Some(job) = queue.pop() {
                            counters.in_flight.fetch_add(1, Ordering::Relaxed);
                            // A backend panic must not leave the ticket
                            // unresolved (the client would park forever) or
                            // kill the worker: catch it, fail the request,
                            // and continue on a fresh session.
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    serve_one(&mut session, &job)
                                }))
                                .unwrap_or_else(|_| {
                                    session = worker_engine.session();
                                    Err(ServeError::Failed)
                                });
                            counters.in_flight.fetch_sub(1, Ordering::Relaxed);
                            match &outcome {
                                Ok(_) => counters.completed.fetch_add(1, Ordering::Relaxed),
                                Err(_) => counters.failed.fetch_add(1, Ordering::Relaxed),
                            };
                            job.shared.complete(outcome);
                        }
                    })
                    .expect("failed to spawn a serve worker")
            })
            .collect();
        AttributionService {
            engine,
            queue,
            counters,
            workers,
            default_timeout: config.default_timeout,
            default_max_steps: config.default_max_steps,
        }
    }

    /// Submits a lineage for attribution under the service's default budget.
    ///
    /// Returns immediately: the [`Ticket`] resolves when a worker has served
    /// the request. A full queue rejects with [`Rejected::QueueFull`].
    pub fn submit(&self, lineage: Dnf) -> Result<Ticket, Rejected> {
        self.submit_with(lineage, RequestOptions::default())
    }

    /// [`AttributionService::submit`] with per-request budget overrides.
    pub fn submit_with(&self, lineage: Dnf, options: RequestOptions) -> Result<Ticket, Rejected> {
        let timeout = options.timeout.or(self.default_timeout);
        let max_steps = options.max_steps.or(self.default_max_steps);
        let shared = Arc::new(RequestShared {
            budget: Budget::new(timeout, max_steps),
            done: Mutex::new(Completion { outcome: None, waker: None }),
        });
        let job = Job { lineage, shared: Arc::clone(&shared) };
        match self.queue.try_push(job) {
            Ok(()) => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { shared })
            }
            Err(error) => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                Err(match error {
                    PushError::Full { capacity } => Rejected::QueueFull { capacity },
                    PushError::Closed => Rejected::ShutDown,
                })
            }
        }
    }

    /// A snapshot of the service's request counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            in_flight: self.counters.in_flight.load(Ordering::Relaxed),
            queue_depth: self.queue.len(),
            workers: self.workers.len(),
        }
    }

    /// A snapshot of the shared cross-session cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// The engine whose sessions the workers run (e.g. to start a
    /// synchronous session against the same shared cache).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Shuts the service down: new submissions are rejected, *queued*
    /// requests fail with [`ServeError::ShutDown`], in-flight requests run to
    /// completion (cancel their tickets first to abort them), and the worker
    /// threads are joined.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        for job in self.queue.drain() {
            self.counters.failed.fetch_add(1, Ordering::Relaxed);
            job.shared.complete(Err(ServeError::ShutDown));
        }
        for worker in self.workers.drain(..) {
            // Worker panics are caught per-request and surfaced as
            // `ServeError::Failed`; a join error here means a panic outside
            // that guard (e.g. in the completion plumbing). Swallow it
            // rather than panic: this also runs from Drop, where a second
            // panic during unwinding would abort the process.
            let _ = worker.join();
        }
    }
}

impl Drop for AttributionService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl fmt::Debug for AttributionService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AttributionService")
            .field("stats", &self.stats())
            .field("cache", &self.cache_stats())
            .finish()
    }
}

/// Serves one request on a worker's session, mapping budget exhaustion to the
/// typed [`ServeError`]s. The pre-run check fails queue-expired or
/// already-cancelled requests without starting them.
fn serve_one(session: &mut banzhaf_engine::Session, job: &Job) -> ServeResult {
    let budget = &job.shared.budget;
    if budget.is_cancelled() {
        return Err(ServeError::Cancelled);
    }
    if budget.exhausted() {
        return Err(ServeError::Interrupted);
    }
    let outcome = session
        .attribute_batch_with_budget(&[&job.lineage], budget)
        .pop()
        .expect("one lineage in, one outcome out");
    outcome.map_err(|_| {
        if budget.is_cancelled() {
            ServeError::Cancelled
        } else {
            ServeError::Interrupted
        }
    })
}
