//! The attribution service: worker threads behind a bounded request queue.

use banzhaf_boolean::Dnf;
use banzhaf_dtree::Budget;
use banzhaf_engine::{
    Attribution, BatchOptions, Database, Engine, EngineConfig, EngineSnapshot, FallbackPolicy,
    LiveSession, LiveStats, QueryAttribution, UnionQuery, Update, UpdateReport,
};
use banzhaf_par::queue::{BoundedQueue, PushError};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::task::{Context, Poll, Waker};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of an [`AttributionService`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The engine configuration every worker session runs (algorithm, ε,
    /// shared-cache capacity, …). Worker sessions share one engine, hence one
    /// cross-session cache.
    pub engine: EngineConfig,
    /// Worker threads draining the request queue (`0` = one per available
    /// CPU). Each worker owns its own engine session; requests run one per
    /// worker at a time, so this is the service's concurrency level.
    pub workers: usize,
    /// Capacity of the bounded request queue. A submit against a full queue
    /// is *rejected* with [`Rejected::QueueFull`] — backpressure is explicit
    /// and immediate, never an unbounded buffer.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own
    /// ([`RequestOptions::timeout`]). Measured from submission, so time spent
    /// queued counts against it.
    pub default_timeout: Option<Duration>,
    /// Step cap applied to requests that do not carry their own.
    pub default_max_steps: Option<u64>,
    /// The database the service hosts live: when set, the service owns a
    /// [`LiveSession`] over it (sharing the workers' engine, hence their
    /// cache) and accepts [`AttributionService::submit_update`] requests.
    pub live_database: Option<Database>,
    /// Queries registered on the live session at startup, as
    /// `(name, query)` pairs. Their attributions are maintained
    /// incrementally across updates and served through
    /// [`AttributionService::live_attribution`]. Requires
    /// [`ServeConfig::live_database`].
    pub live_queries: Vec<(String, UnionQuery)>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            engine: EngineConfig::default(),
            workers: 2,
            queue_capacity: 64,
            default_timeout: None,
            default_max_steps: None,
            live_database: None,
            live_queries: Vec::new(),
        }
    }
}

impl ServeConfig {
    /// A serving configuration around the given engine configuration.
    pub fn new(engine: EngineConfig) -> Self {
        ServeConfig { engine, ..ServeConfig::default() }
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the request-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the default per-request deadline.
    pub fn with_default_timeout(mut self, timeout: Duration) -> Self {
        self.default_timeout = Some(timeout);
        self
    }

    /// Sets the default per-request step cap.
    pub fn with_default_max_steps(mut self, max_steps: u64) -> Self {
        self.default_max_steps = Some(max_steps);
        self
    }

    /// Hosts `database` live: the service accepts
    /// [`AttributionService::submit_update`] requests against it.
    pub fn with_live_database(mut self, database: Database) -> Self {
        self.live_database = Some(database);
        self
    }

    /// Registers `query` under `name` on the live session at startup.
    pub fn with_live_query(mut self, name: impl Into<String>, query: UnionQuery) -> Self {
        self.live_queries.push((name.into(), query));
        self
    }
}

/// Per-request overrides of the service's default budget.
///
/// Construct with [`RequestOptions::new`] and the `with_*` builders; the
/// struct is `#[non_exhaustive]` so future knobs are not breaking changes.
#[derive(Clone, Debug, Default)]
#[non_exhaustive]
pub struct RequestOptions {
    /// Deadline for this request, from submission (overrides the default).
    pub timeout: Option<Duration>,
    /// Step cap for this request (overrides the default).
    pub max_steps: Option<u64>,
    /// Budget-exhaustion fallback policy for this request (overrides the
    /// engine configuration's [`FallbackPolicy`]). With a ladder, a request
    /// that would fail [`ServeError::Interrupted`] is instead re-attributed
    /// on cheaper rungs within the remaining budget, and the resulting
    /// [`Attribution`] carries its [`banzhaf_engine::Degradation`] marker.
    pub fallback: Option<FallbackPolicy>,
}

impl RequestOptions {
    /// Options inheriting every service default.
    pub fn new() -> Self {
        RequestOptions::default()
    }

    /// Sets this request's deadline, measured from submission.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets this request's step cap.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = Some(max_steps);
        self
    }

    /// Sets this request's budget-exhaustion fallback policy.
    pub fn with_fallback(mut self, fallback: FallbackPolicy) -> Self {
        self.fallback = Some(fallback);
        self
    }
}

/// Why a submission was refused. Typed so callers can shed load
/// ([`Rejected::QueueFull`]) or stop submitting ([`Rejected::ShutDown`])
/// without string matching.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rejected {
    /// The bounded request queue is at capacity; retry later or shed load.
    QueueFull {
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// The service is shutting down and accepts no further requests.
    ShutDown,
    /// An update was submitted to a service with no live database
    /// ([`ServeConfig::live_database`] was not set).
    NotLive,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "request queue is full (capacity {capacity})")
            }
            Rejected::ShutDown => write!(f, "service is shut down"),
            Rejected::NotLive => write!(f, "service hosts no live database"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Bounded deterministic backoff for [`Rejected::QueueFull`] retries
/// ([`AttributionService::submit_with_retry`]).
///
/// The backoff doubles from [`RetryPolicy::base`] per attempt and saturates
/// at [`RetryPolicy::cap`] — no jitter, so a retry schedule is reproducible:
/// attempt `k` always sleeps `min(base · 2^k, cap)`.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` = behave like plain `submit`).
    pub attempts: u32,
    /// Sleep before the first retry.
    pub base: Duration,
    /// Upper bound on any single sleep.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    /// Three retries backing off 1 ms → 2 ms → 4 ms.
    fn default() -> Self {
        RetryPolicy { attempts: 3, base: Duration::from_millis(1), cap: Duration::from_millis(50) }
    }
}

impl RetryPolicy {
    /// A policy retrying `attempts` times with the default backoff curve.
    pub fn new(attempts: u32) -> Self {
        RetryPolicy { attempts, ..RetryPolicy::default() }
    }

    /// The deterministic sleep before retry number `attempt` (0-based):
    /// `min(base · 2^attempt, cap)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doubled = self.base.saturating_mul(2u32.saturating_pow(attempt.min(31)));
        doubled.min(self.cap)
    }
}

/// Why an accepted request failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServeError {
    /// The request's budget (deadline or step cap) was exhausted — either
    /// while queued or cooperatively mid-attribution. The shared cache is
    /// never poisoned by an interrupted request: only completed attributions
    /// are merged.
    Interrupted,
    /// The request was cancelled through [`Ticket::cancel`] (while queued or
    /// cooperatively mid-compile).
    Cancelled,
    /// The service shut down before the request ran.
    ShutDown,
    /// The attribution backend panicked while serving the request. The
    /// worker caught the panic, discarded its session, and kept serving;
    /// nothing partial reached the shared cache.
    Failed,
    /// An update did not apply: it named an unknown relation, carried the
    /// wrong arity, or deleted a fact not present in the live database. The
    /// live state is unchanged.
    InvalidUpdate,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Interrupted => write!(f, "request exceeded its budget"),
            ServeError::Cancelled => write!(f, "request was cancelled"),
            ServeError::ShutDown => write!(f, "service shut down before the request ran"),
            ServeError::Failed => write!(f, "attribution backend panicked while serving"),
            ServeError::InvalidUpdate => {
                write!(f, "update does not apply to the live database")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// The outcome an attribution [`Ticket`] resolves to.
pub type ServeResult = Result<Attribution, ServeError>;

struct Completion<T> {
    outcome: Option<Result<T, ServeError>>,
    waker: Option<Waker>,
}

/// State shared between a [`Ticket`] and the worker serving its request.
struct RequestShared<T> {
    /// The request's cooperative budget: deadline/step caps mapped onto the
    /// shared atomic [`Budget`], and the cancellation flag the ticket sets.
    budget: Budget,
    done: Mutex<Completion<T>>,
}

impl<T> RequestShared<T> {
    fn new(budget: Budget) -> Self {
        RequestShared { budget, done: Mutex::new(Completion { outcome: None, waker: None }) }
    }

    fn complete(&self, outcome: Result<T, ServeError>) {
        let waker = {
            let mut done = self.done.lock().expect("completion lock poisoned");
            debug_assert!(done.outcome.is_none(), "request completed twice");
            done.outcome = Some(outcome);
            done.waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// A pending response: a [`Future`] resolving to the request's outcome
/// (`Result<T, ServeError>`), plus out-of-band cancellation.
///
/// Attribution submissions yield `Ticket<Attribution>` (the default); update
/// submissions yield [`UpdateTicket`] = `Ticket<UpdateReport>`. Consume a
/// ticket with [`crate::block_on`], combine batches with [`crate::join_all`],
/// or poll it from any executor. Dropping the ticket abandons the response
/// (the request itself still runs unless cancelled first).
pub struct Ticket<T = Attribution> {
    shared: Arc<RequestShared<T>>,
}

/// A pending [`UpdateReport`]: what [`AttributionService::submit_update`]
/// returns.
pub type UpdateTicket = Ticket<UpdateReport>;

impl<T> fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket")
            .field("done", &self.is_done())
            .field("cancelled", &self.shared.budget.is_cancelled())
            .finish()
    }
}

impl<T> Ticket<T> {
    /// Cancels the request: a queued request never runs, an in-flight one is
    /// interrupted cooperatively (its workers observe the cancellation at the
    /// next budget check, typically within tens of microseconds). The ticket
    /// then resolves to [`ServeError::Cancelled`].
    ///
    /// Cancelling a request that already completed has no effect.
    pub fn cancel(&self) {
        self.shared.budget.cancel();
    }

    /// `true` once the response has been produced (the future would resolve
    /// immediately).
    pub fn is_done(&self) -> bool {
        self.shared.done.lock().expect("completion lock poisoned").outcome.is_some()
    }

    /// Blocks the calling thread until the response arrives.
    pub fn wait(self) -> Result<T, ServeError> {
        crate::block_on(self)
    }
}

impl<T> Future for Ticket<T> {
    type Output = Result<T, ServeError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Result<T, ServeError>> {
        let mut done = self.shared.done.lock().expect("completion lock poisoned");
        match done.outcome.take() {
            Some(outcome) => Poll::Ready(outcome),
            None => {
                done.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

enum Job {
    Attribute {
        lineage: Dnf,
        fallback: Option<FallbackPolicy>,
        shared: Arc<RequestShared<Attribution>>,
    },
    Update {
        update: Update,
        seq: u64,
        shared: Arc<RequestShared<UpdateReport>>,
    },
}

/// The live-update state shared by the service handle and its workers.
///
/// Updates are *totally ordered*: submission assigns each update a sequence
/// number under [`LiveShared::next_seq`] (held across the queue push, so
/// queue order equals sequence order), and a worker applies an update only
/// when [`LiveShared::order`] reaches its number, waiting on
/// [`LiveShared::turn`] otherwise. Attribution requests never wait: they only
/// contend on the engine's shared cache. Snapshots
/// ([`AttributionService::live_attribution`]) lock [`LiveShared::state`], the
/// same lock updates apply under, so a served result never observes a
/// half-applied update.
struct LiveShared {
    state: Mutex<LiveSession>,
    /// The sequence number of the next update allowed to apply.
    order: Mutex<u64>,
    turn: Condvar,
    /// The next sequence number to assign; doubles as the submission lock
    /// making `seq` allocation and the queue push atomic.
    next_seq: Mutex<u64>,
}

impl LiveShared {
    /// Advances the turn to `seq + 1`, first waiting until it is `seq`'s
    /// turn. Every allocated sequence number must pass through here exactly
    /// once — applied, failed, or shut down — or later updates deadlock.
    ///
    /// The advance is unconditional: a `body` that panics still bumps the
    /// turn (and wakes the waiters) before the panic resumes, so one bad
    /// update can never wedge every later one behind its sequence number.
    fn take_turn<R>(&self, seq: u64, body: impl FnOnce() -> R) -> R {
        let mut order = self.order.lock().unwrap_or_else(PoisonError::into_inner);
        while *order != seq {
            order = self.turn.wait(order).unwrap_or_else(PoisonError::into_inner);
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
        *order += 1;
        drop(order);
        self.turn.notify_all();
        match outcome {
            Ok(value) => value,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

fn lock_live(state: &Mutex<LiveSession>) -> MutexGuard<'_, LiveSession> {
    // A backend panic mid-update unwinds through the state guard and poisons
    // the lock. The update was already failed with `ServeError::Failed`;
    // recover the guard so snapshots and later updates keep working.
    state.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Default)]
struct ServiceCounters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    in_flight: AtomicU64,
    degraded: AtomicU64,
    fallback_steps: AtomicU64,
}

impl ServiceCounters {
    fn finish(&self, ok: bool) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        if ok {
            self.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A point-in-time snapshot of a service's request counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted into the queue (attributions and updates).
    pub submitted: u64,
    /// Submissions refused ([`Rejected::QueueFull`] backpressure).
    pub rejected: u64,
    /// Requests completed with an attribution or an update report.
    pub completed: u64,
    /// Requests failed (interrupted, cancelled, invalid, or shut down).
    pub failed: u64,
    /// Requests currently executing on a worker.
    pub in_flight: u64,
    /// Completed requests whose attribution was resolved by a fallback rung
    /// rather than the primary attributor (always a subset of `completed`;
    /// zero unless a [`FallbackPolicy::Ladder`] is in effect).
    pub degraded: u64,
    /// Steps the fallback rungs charged while resolving degraded requests.
    pub fallback_steps: u64,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// The service's worker count.
    pub workers: usize,
    /// Lookups the shared cache resolved without any canonicalization
    /// search, because the request's cheap isomorphism-invariant fingerprint
    /// had no resident entry (mirrors [`banzhaf_engine::CacheStats`]).
    pub prekey_skips: u64,
    /// Individualization searches the shared cache's exact keying actually
    /// ran, across all sessions (mirrors [`banzhaf_engine::CacheStats`]).
    pub canon_searches: u64,
    /// Shards of the engine's cache tier (1 unless
    /// [`banzhaf_engine::CacheConfig::shards`] raised it); per-shard
    /// counters are in [`AttributionService::engine_stats`].
    pub shards: usize,
    /// Warm-start snapshots loaded at engine construction (mirrors
    /// [`banzhaf_engine::CacheStats`]).
    pub snapshot_loads: u64,
    /// Cache entries admitted from warm-start snapshots (mirrors
    /// [`banzhaf_engine::CacheStats`]).
    pub snapshot_entries: u64,
    /// Warm-start snapshots rejected — corrupt, truncated, or
    /// version-mismatched files the engine refused and degraded to a cold
    /// start (mirrors [`banzhaf_engine::CacheStats`]).
    pub snapshot_rejects: u64,
}

/// The async attribution front end: a bounded request queue drained by worker
/// threads that run engine sessions over one shared cross-session cache.
///
/// * **Backpressure**: [`AttributionService::submit`] never blocks and never
///   buffers unboundedly — a full queue is a typed [`Rejected::QueueFull`].
/// * **Budgets**: every request gets its own [`Budget`] (deadline from
///   submission + step cap), the same cooperative mechanism the batch engine
///   uses, so a deadline expiring mid-compile interrupts all threads working
///   on that request at once.
/// * **Cancellation**: [`Ticket::cancel`] flips the budget's cancellation
///   flag; queued requests never start, in-flight ones stop at the next
///   budget check.
/// * **Shared cache**: workers are sessions of one [`Engine`], so a lineage
///   shape compiled for any request is a cache hit for every later request,
///   across all client sessions ([`AttributionService::engine_stats`]) —
///   sharded and optionally warm-started from a snapshot via
///   [`banzhaf_engine::CacheConfig`].
/// * **Live updates**: a service configured with
///   [`ServeConfig::with_live_database`] also hosts a [`LiveSession`];
///   [`AttributionService::submit_update`] queues inserts/deletes whose
///   tickets resolve to [`UpdateReport`]s. Updates apply in submission order
///   and are serialized against snapshot reads, so
///   [`AttributionService::live_attribution`] never observes a half-applied
///   update.
///
/// ```
/// use banzhaf_boolean::{Dnf, Var};
/// use banzhaf_serve::{AttributionService, RequestOptions, ServeConfig};
///
/// let service = AttributionService::start(ServeConfig::default().with_workers(2));
/// let phi = Dnf::from_clauses(vec![vec![Var(0), Var(1)], vec![Var(2)]]);
/// let ticket = service.submit(phi, RequestOptions::default()).unwrap();
/// let attribution = ticket.wait().unwrap();
/// assert_eq!(attribution.model_count.as_ref().unwrap().to_u64(), Some(5));
/// ```
pub struct AttributionService {
    engine: Engine,
    queue: Arc<BoundedQueue<Job>>,
    counters: Arc<ServiceCounters>,
    live: Option<Arc<LiveShared>>,
    workers: Vec<JoinHandle<()>>,
    default_timeout: Option<Duration>,
    default_max_steps: Option<u64>,
}

impl AttributionService {
    /// Starts the service: spawns the worker threads and returns the handle
    /// used to submit requests. When [`ServeConfig::live_database`] is set,
    /// the live session is built (and its queries attributed) before any
    /// worker starts.
    ///
    /// # Panics
    /// Panics if [`ServeConfig::live_queries`] is non-empty without a
    /// [`ServeConfig::live_database`] to register them on.
    pub fn start(config: ServeConfig) -> Self {
        let engine = Engine::new(config.engine.clone());
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity.max(1)));
        let counters = Arc::new(ServiceCounters::default());
        assert!(
            config.live_queries.is_empty() || config.live_database.is_some(),
            "live queries configured without a live database"
        );
        let live = config.live_database.map(|db| {
            let mut session = engine.live_session(db);
            for (name, query) in config.live_queries {
                session.register(name, query);
            }
            Arc::new(LiveShared {
                state: Mutex::new(session),
                order: Mutex::new(0),
                turn: Condvar::new(),
                next_seq: Mutex::new(0),
            })
        });
        // Workers are deliberately *not* clamped to the core count: extra
        // serve workers buy latency isolation (a long request does not
        // head-of-line-block the queue), not throughput.
        let worker_count = if config.workers == 0 {
            banzhaf_par::ThreadPool::new(0).threads()
        } else {
            config.workers
        };
        let workers = (0..worker_count)
            .map(|index| {
                let queue = Arc::clone(&queue);
                let counters = Arc::clone(&counters);
                let worker_engine = engine.clone();
                let live = live.clone();
                std::thread::Builder::new()
                    .name(format!("banzhaf-serve-{index}"))
                    .spawn(move || {
                        let mut session = worker_engine.session();
                        while let Some(job) = queue.pop() {
                            counters.in_flight.fetch_add(1, Ordering::Relaxed);
                            match job {
                                Job::Attribute { lineage, fallback, shared } => {
                                    // A backend panic must not leave the
                                    // ticket unresolved (the client would
                                    // park forever) or kill the worker:
                                    // catch it, fail the request, and
                                    // continue on a fresh session.
                                    let outcome = std::panic::catch_unwind(
                                        std::panic::AssertUnwindSafe(|| {
                                            banzhaf_par::failpoint!("serve::worker_compile");
                                            serve_attribution(
                                                &mut session,
                                                &lineage,
                                                fallback.as_ref(),
                                                &shared.budget,
                                            )
                                        }),
                                    )
                                    .unwrap_or_else(|_| {
                                        session = worker_engine.session();
                                        Err(ServeError::Failed)
                                    });
                                    if let Ok(attribution) = &outcome {
                                        if attribution.degradation.is_some() {
                                            counters.degraded.fetch_add(1, Ordering::Relaxed);
                                            counters.fallback_steps.fetch_add(
                                                attribution.stats.fallback_steps,
                                                Ordering::Relaxed,
                                            );
                                        }
                                    }
                                    counters.finish(outcome.is_ok());
                                    shared.complete(outcome);
                                }
                                Job::Update { update, seq, shared } => {
                                    let live = live
                                        .as_ref()
                                        .expect("update jobs exist only on live services");
                                    // Same guard as attributions: a panic
                                    // escaping the turn (the turn itself has
                                    // already advanced) fails the request
                                    // instead of killing the worker.
                                    let outcome =
                                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                            || serve_update(live, update, seq, &shared.budget),
                                        ))
                                        .unwrap_or(Err(ServeError::Failed));
                                    counters.finish(outcome.is_ok());
                                    shared.complete(outcome);
                                }
                            }
                        }
                    })
                    .expect("failed to spawn a serve worker")
            })
            .collect();
        AttributionService {
            engine,
            queue,
            counters,
            live,
            workers,
            default_timeout: config.default_timeout,
            default_max_steps: config.default_max_steps,
        }
    }

    fn budget_for(&self, options: &RequestOptions) -> Budget {
        Budget::new(
            options.timeout.or(self.default_timeout),
            options.max_steps.or(self.default_max_steps),
        )
    }

    fn push(&self, job: Job) -> Result<(), Rejected> {
        match self.queue.try_push(job) {
            Ok(()) => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(error) => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                Err(match error {
                    PushError::Full { capacity } => Rejected::QueueFull { capacity },
                    PushError::Closed => Rejected::ShutDown,
                })
            }
        }
    }

    /// Submits a lineage for attribution. `options` overrides the service's
    /// default budget per field ([`RequestOptions::new`] inherits all
    /// defaults).
    ///
    /// Returns immediately: the [`Ticket`] resolves when a worker has served
    /// the request. A full queue rejects with [`Rejected::QueueFull`].
    pub fn submit(&self, lineage: Dnf, options: RequestOptions) -> Result<Ticket, Rejected> {
        let shared = Arc::new(RequestShared::new(self.budget_for(&options)));
        let job =
            Job::Attribute { lineage, fallback: options.fallback, shared: Arc::clone(&shared) };
        self.push(job)?;
        Ok(Ticket { shared })
    }

    /// [`AttributionService::submit`], retrying [`Rejected::QueueFull`] with
    /// the policy's bounded deterministic backoff. Any other rejection — and
    /// success — returns immediately; after the final attempt the last
    /// `QueueFull` is returned as-is.
    pub fn submit_with_retry(
        &self,
        lineage: Dnf,
        options: RequestOptions,
        policy: &RetryPolicy,
    ) -> Result<Ticket, Rejected> {
        let mut attempt = 0;
        loop {
            match self.submit(lineage.clone(), options.clone()) {
                Err(Rejected::QueueFull { .. }) if attempt < policy.attempts => {
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                }
                outcome => return outcome,
            }
        }
    }

    /// Submits a live-database update (insert or delete). The
    /// [`UpdateTicket`] resolves to the [`UpdateReport`] once the update has
    /// been applied incrementally — only answers whose lineage mentions the
    /// touched fact are re-derived; everything else stays warm in the shared
    /// cache.
    ///
    /// Updates apply in submission order, serialized against each other and
    /// against [`AttributionService::live_attribution`] snapshots. Rejects
    /// with [`Rejected::NotLive`] when the service was started without a
    /// [`ServeConfig::live_database`].
    ///
    /// ```
    /// use banzhaf_engine::{parse_program, Database, Update};
    /// use banzhaf_serve::{AttributionService, RequestOptions, ServeConfig};
    ///
    /// let mut db = Database::new();
    /// db.add_relation("R", 2);
    /// db.insert_endogenous("R", vec![1.into(), 2.into()]).unwrap();
    /// let query = parse_program("Q(X) :- R(X, Y).").unwrap();
    /// let service = AttributionService::start(
    ///     ServeConfig::default().with_live_database(db).with_live_query("q", query),
    /// );
    ///
    /// let update = Update::insert("R", vec![3.into(), 4.into()]);
    /// let report = service.submit_update(update, RequestOptions::default()).unwrap().wait().unwrap();
    /// assert_eq!(report.touched.len(), 1);
    /// assert_eq!(service.live_attribution("q").unwrap().answers.len(), 2);
    /// ```
    pub fn submit_update(
        &self,
        update: Update,
        options: RequestOptions,
    ) -> Result<UpdateTicket, Rejected> {
        let live = self.live.as_ref().ok_or(Rejected::NotLive)?;
        let shared = Arc::new(RequestShared::new(self.budget_for(&options)));
        // Holding the allocation lock across the push keeps queue order equal
        // to sequence order, which the turn-taking in `serve_update` (and the
        // shutdown drain) relies on. A refused push consumes no number.
        let mut next_seq = live.next_seq.lock().expect("update submission lock poisoned");
        let job = Job::Update { update, seq: *next_seq, shared: Arc::clone(&shared) };
        self.push(job)?;
        *next_seq += 1;
        Ok(Ticket { shared })
    }

    /// `true` when the service hosts a live database and accepts
    /// [`AttributionService::submit_update`].
    pub fn is_live(&self) -> bool {
        self.live.is_some()
    }

    /// The maintained attribution of the live query registered under `name`
    /// (`None` for unknown names or a service with no live database).
    ///
    /// The snapshot is taken under the same lock updates apply under, so it
    /// reflects a whole number of updates — never a half-applied one.
    pub fn live_attribution(&self, name: &str) -> Option<QueryAttribution> {
        let live = self.live.as_ref()?;
        let state = lock_live(&live.state);
        state.attribution(name)
    }

    /// Cumulative statistics of the live session (`None` when the service
    /// hosts no live database).
    pub fn live_stats(&self) -> Option<LiveStats> {
        let live = self.live.as_ref()?;
        Some(*lock_live(&live.state).stats())
    }

    /// A snapshot of the service's request counters.
    pub fn stats(&self) -> ServiceStats {
        let snapshot = self.engine.stats();
        let cache = &snapshot.cache;
        ServiceStats {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            in_flight: self.counters.in_flight.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            fallback_steps: self.counters.fallback_steps.load(Ordering::Relaxed),
            queue_depth: self.queue.len(),
            workers: self.workers.len(),
            prekey_skips: cache.prekey_skips,
            canon_searches: cache.canon_searches,
            shards: snapshot.shards.len(),
            snapshot_loads: cache.snapshot_loads,
            snapshot_entries: cache.snapshot_entries,
            snapshot_rejects: cache.snapshot_rejects,
        }
    }

    /// One consistent snapshot of the engine's cache tier: aggregate
    /// counters plus the per-shard breakdown.
    pub fn engine_stats(&self) -> EngineSnapshot {
        self.engine.stats()
    }

    /// The shard of the engine's cache tier that owns `lineage`'s entry —
    /// stable across processes, so a fleet can report (and partition by) the
    /// serving shard.
    pub fn shard_of(&self, lineage: &Dnf) -> usize {
        self.engine.shard_of(lineage)
    }

    /// The engine whose sessions the workers run (e.g. to start a
    /// synchronous session against the same shared cache).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Shuts the service down: new submissions are rejected, *queued*
    /// requests fail with [`ServeError::ShutDown`], in-flight requests run to
    /// completion (cancel their tickets first to abort them), and the worker
    /// threads are joined.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        for job in self.queue.drain() {
            self.counters.failed.fetch_add(1, Ordering::Relaxed);
            match job {
                Job::Attribute { shared, .. } => shared.complete(Err(ServeError::ShutDown)),
                Job::Update { seq, shared, .. } => {
                    shared.complete(Err(ServeError::ShutDown));
                    // A worker may already hold a *later* update popped
                    // before the close and be waiting its turn; every
                    // drained sequence number must still advance the turn
                    // counter or that worker never wakes and the join below
                    // deadlocks. Drained updates are in sequence order, and
                    // numbers below them are held by workers who advance on
                    // their own, so each wait here terminates.
                    if let Some(live) = &self.live {
                        live.take_turn(seq, || ());
                    }
                }
            }
        }
        for worker in self.workers.drain(..) {
            // Worker panics are caught per-request and surfaced as
            // `ServeError::Failed`; a join error here means a panic outside
            // that guard (e.g. in the completion plumbing). Swallow it
            // rather than panic: this also runs from Drop, where a second
            // panic during unwinding would abort the process.
            let _ = worker.join();
        }
    }
}

impl Drop for AttributionService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl fmt::Debug for AttributionService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AttributionService")
            .field("stats", &self.stats())
            .field("cache", &self.engine_stats().cache)
            .field("live", &self.live.is_some())
            .finish_non_exhaustive()
    }
}

/// Serves one attribution request on a worker's session, mapping budget
/// exhaustion to the typed [`ServeError`]s. The pre-run check fails
/// queue-expired or already-cancelled requests without starting them —
/// except under a fallback ladder, where a queue-expired request still runs
/// (the primary rung starves immediately and the ladder resolves it within
/// its grace allowance instead of dropping the request).
fn serve_attribution(
    session: &mut banzhaf_engine::Session,
    lineage: &Dnf,
    fallback: Option<&FallbackPolicy>,
    budget: &Budget,
) -> ServeResult {
    if budget.is_cancelled() {
        return Err(ServeError::Cancelled);
    }
    let ladder = !fallback.unwrap_or_else(|| &session.config().fallback).is_strict();
    if budget.exhausted() && !ladder {
        return Err(ServeError::Interrupted);
    }
    let mut options = BatchOptions::new().with_shared_budget(budget);
    if let Some(policy) = fallback {
        options = options.with_fallback(policy);
    }
    let outcome = session
        .attribute_batch(&[lineage], options)
        .pop()
        .expect("one lineage in, one outcome out");
    outcome.map_err(|_| {
        if budget.is_cancelled() {
            ServeError::Cancelled
        } else {
            ServeError::Interrupted
        }
    })
}

/// Serves one update request: waits for the update's turn (submission
/// order), applies it under the live-state lock, and advances the turn. The
/// turn advances even for cancelled, expired, or panicking updates — every
/// allocated sequence number passes through exactly once.
fn serve_update(
    live: &LiveShared,
    update: Update,
    seq: u64,
    budget: &Budget,
) -> Result<UpdateReport, ServeError> {
    live.take_turn(seq, || {
        banzhaf_par::failpoint!("serve::take_turn");
        if budget.is_cancelled() {
            return Err(ServeError::Cancelled);
        }
        if budget.exhausted() {
            return Err(ServeError::Interrupted);
        }
        // Catch backend panics *inside* the turn so the turn still advances;
        // the state lock is poisoned by the unwind and recovered by
        // `lock_live` everywhere it is taken.
        let applied = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lock_live(&live.state).apply_update(update)
        }));
        match applied {
            Ok(Ok(report)) => Ok(report),
            Ok(Err(_)) => Err(ServeError::InvalidUpdate),
            Err(_) => Err(ServeError::Failed),
        }
    })
}
