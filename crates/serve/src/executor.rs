//! A hand-rolled, dependency-free future executor.
//!
//! The serving layer's responses are plain [`std::future::Future`]s; this
//! module provides the minimal machinery to consume them without an async
//! runtime dependency: [`block_on`] drives one future on the current thread
//! (parking between polls, woken through [`std::task::Wake`]), and
//! [`join_all`] combines many futures into one that resolves when all of
//! them have.

use std::future::Future;
use std::pin::{pin, Pin};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

/// Wakes a parked thread; the `notified` flag closes the race between a wake
/// arriving just before the thread parks.
struct ThreadUnparker {
    thread: Thread,
    notified: AtomicBool,
}

impl Wake for ThreadUnparker {
    fn wake(self: Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

/// Runs a future to completion on the calling thread.
///
/// The thread parks between polls and is unparked by the future's waker, so
/// waiting consumes no CPU. This is the client-side half of the serving
/// layer's executor: workers complete requests and wake the registered
/// waker, `block_on` wakes up and observes the outcome.
///
/// ```
/// let value = banzhaf_serve::block_on(async { 21 * 2 });
/// assert_eq!(value, 42);
/// ```
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = pin!(future);
    let unparker = Arc::new(ThreadUnparker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&unparker));
    let mut context = Context::from_waker(&waker);
    loop {
        if let Poll::Ready(value) = future.as_mut().poll(&mut context) {
            return value;
        }
        while !unparker.notified.swap(false, Ordering::Acquire) {
            std::thread::park();
        }
    }
}

/// A future resolving to the outputs of many futures, in input order.
///
/// Returned by [`join_all`]. Every still-pending inner future is polled on
/// each wake — fine for the request-batch sizes the serving layer deals in.
pub struct JoinAll<F: Future + Unpin> {
    pending: Vec<Option<F>>,
    outputs: Vec<Option<F::Output>>,
}

/// Combines `futures` into one future yielding every output, in input order.
///
/// The combined future resolves once *all* inputs have; outputs are not
/// reordered by completion time. Submit-then-`block_on(join_all(tickets))` is
/// the canonical way to drive a batch of concurrent requests from one client
/// thread.
pub fn join_all<F: Future + Unpin>(futures: Vec<F>) -> JoinAll<F> {
    let outputs = futures.iter().map(|_| None).collect();
    JoinAll { pending: futures.into_iter().map(Some).collect(), outputs }
}

// `JoinAll` holds its futures and outputs in ordinary `Vec`s and never
// creates self-references, so it is `Unpin` whenever polling it is possible
// at all (outputs are only moved *out*, which `Pin` does not restrict).
impl<F: Future + Unpin> Unpin for JoinAll<F> {}

impl<F: Future + Unpin> Future for JoinAll<F> {
    type Output = Vec<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut all_done = true;
        for (slot, output) in this.pending.iter_mut().zip(this.outputs.iter_mut()) {
            if let Some(future) = slot {
                match Pin::new(future).poll(cx) {
                    Poll::Ready(value) => {
                        *output = Some(value);
                        *slot = None;
                    }
                    Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            Poll::Ready(this.outputs.iter_mut().map(|o| o.take().expect("resolved")).collect())
        } else {
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[derive(Default)]
    struct FlagState {
        ready: bool,
        waker: Option<Waker>,
    }

    /// A future that becomes ready after an external thread flips a flag.
    struct FlagFuture {
        flag: Arc<std::sync::Mutex<FlagState>>,
    }

    impl FlagFuture {
        fn new() -> (Self, impl FnOnce()) {
            let flag = Arc::new(std::sync::Mutex::new(FlagState::default()));
            let setter = {
                let flag = Arc::clone(&flag);
                move || {
                    let waker = {
                        let mut state = flag.lock().unwrap();
                        state.ready = true;
                        state.waker.take()
                    };
                    if let Some(waker) = waker {
                        waker.wake();
                    }
                }
            };
            (FlagFuture { flag }, setter)
        }
    }

    impl Future for FlagFuture {
        type Output = u32;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
            let mut state = self.flag.lock().unwrap();
            if state.ready {
                Poll::Ready(7)
            } else {
                state.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(async { 5 }), 5);
    }

    #[test]
    fn block_on_parks_until_woken() {
        let (future, set) = FlagFuture::new();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                set();
            });
            assert_eq!(block_on(future), 7);
        });
    }

    #[test]
    fn join_all_preserves_input_order() {
        let (a, set_a) = FlagFuture::new();
        let (b, set_b) = FlagFuture::new();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                // Resolve in reverse order; outputs must stay in input order.
                set_b();
                std::thread::sleep(Duration::from_millis(5));
                set_a();
            });
            assert_eq!(block_on(join_all(vec![a, b])), vec![7, 7]);
        });
    }

    #[test]
    fn join_all_of_nothing_is_ready() {
        let empty: Vec<FlagFuture> = Vec::new();
        assert!(block_on(join_all(empty)).is_empty());
    }
}
