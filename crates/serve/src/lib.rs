//! Async attribution serving in front of the batch engine.
//!
//! The engine ([`banzhaf_engine`]) is synchronous: a [`banzhaf_engine::Session`]
//! attributes lineages on the caller's thread. This crate puts a
//! dependency-free **async front end** in front of it, the shape the paper's
//! interactive fact-attribution workloads (and the related Kernel-Banzhaf /
//! aggregate-query estimators) need:
//!
//! * a **hand-rolled executor** — worker threads behind a bounded request
//!   queue ([`banzhaf_par::queue::BoundedQueue`]), with responses exposed as
//!   plain [`std::future::Future`]s driven by [`block_on`]/[`join_all`] and
//!   woken through [`std::task::Wake`]. No async runtime dependency; the
//!   build environment has none, and none is needed.
//! * **backpressure** — a full queue *rejects* ([`Rejected::QueueFull`])
//!   instead of buffering unboundedly; callers decide to retry, shed, or
//!   spill.
//! * **per-request budgets** — each request's deadline/step caps are mapped
//!   onto the shared atomic [`banzhaf_dtree::Budget`], so exhaustion
//!   interrupts an in-flight attribution cooperatively across every thread
//!   working on it, exactly like the batch engine's shared-budget path.
//! * **cancellation** — [`Ticket::cancel`] flips the budget's cancellation
//!   flag: queued requests never start, in-flight ones stop at their next
//!   budget check.
//! * **a shared cross-session cache** — workers are sessions of one
//!   [`banzhaf_engine::Engine`], so concurrent clients reuse each other's
//!   compilations through the engine-level [`banzhaf_engine::ShardedCache`]
//!   (size-bounded, per-shard LRU-evicted, optionally warm-started from a
//!   snapshot via [`banzhaf_engine::CacheConfig`]; counters in
//!   [`AttributionService::engine_stats`], the owning shard of a request in
//!   [`AttributionService::shard_of`]).
//! * **live updates** — a service started with
//!   [`ServeConfig::with_live_database`] owns a
//!   [`banzhaf_engine::LiveSession`]; [`AttributionService::submit_update`]
//!   queues inserts/deletes whose [`UpdateTicket`]s resolve to
//!   [`banzhaf_engine::UpdateReport`]s. Updates apply incrementally in
//!   submission order and are serialized against snapshot reads
//!   ([`AttributionService::live_attribution`]), so served results never
//!   observe a half-applied update.
//!
//! # Example
//!
//! ```
//! use banzhaf_boolean::{Dnf, Var};
//! use banzhaf_serve::{block_on, join_all, AttributionService, RequestOptions, ServeConfig};
//!
//! let service = AttributionService::start(ServeConfig::default().with_workers(2));
//! // Two isomorphic lineages: the second is served from the shared cache.
//! let tickets: Vec<_> = [0u32, 10]
//!     .iter()
//!     .map(|&o| {
//!         let phi = Dnf::from_clauses(vec![vec![Var(o), Var(o + 1)], vec![Var(o + 2)]]);
//!         service.submit(phi, RequestOptions::default()).unwrap()
//!     })
//!     .collect();
//! let outcomes = block_on(join_all(tickets));
//! assert!(outcomes.iter().all(Result::is_ok));
//! // Every request was either compiled once or served from the shared cache.
//! let cache = service.engine_stats().cache;
//! assert_eq!(cache.hits + cache.insertions, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
mod service;

pub use banzhaf_engine::{Degradation, DegradeReason, FallbackPolicy, Rung};
pub use executor::{block_on, join_all, JoinAll};
pub use service::{
    AttributionService, Rejected, RequestOptions, RetryPolicy, ServeConfig, ServeError,
    ServeResult, ServiceStats, Ticket, UpdateTicket,
};
