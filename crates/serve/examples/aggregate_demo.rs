//! End-to-end smoke demo: aggregate attribution flowing through the serving
//! stack with **unchanged** serve APIs.
//!
//! The async front end still speaks Boolean DNF requests only — aggregate
//! work rides the same engine through [`AttributionService::engine`], so a
//! SUM/COUNT client shares the worker pool's cache and configuration without
//! any new service endpoints. This demo:
//!
//! 1. evaluates a SUM and a COUNT query over a TPC-H-flavoured micro
//!    database, producing per-answer [`banzhaf_engine::WeightedDnf`] lineages,
//! 2. submits the *Boolean skeletons* of those lineages through the untouched
//!    async `submit` API, and
//! 3. attributes the weighted lineages synchronously via a session of the
//!    service's own engine, cross-checking every aggregate Banzhaf value
//!    against the brute-force definition.
//!
//! Run with `cargo run -p banzhaf-serve --example aggregate_demo`.

use banzhaf_engine::{evaluate_aggregate, parse_program, Database, Score};
use banzhaf_serve::{block_on, join_all, AttributionService, RequestOptions, ServeConfig};

fn main() {
    // A supplier/lineitem-style micro database. Suppliers are endogenous
    // (we attribute revenue to them); one line item is exogenous noise.
    let mut db = Database::new();
    db.add_relation("Supp", 2);
    db.add_relation("Item", 3);
    db.insert_endogenous("Supp", vec![1.into(), "acme".into()]).unwrap();
    db.insert_endogenous("Supp", vec![2.into(), "bolt".into()]).unwrap();
    db.insert_endogenous("Item", vec![1.into(), 10.into(), 5.into()]).unwrap();
    db.insert_endogenous("Item", vec![1.into(), 11.into(), 7.into()]).unwrap();
    db.insert_endogenous("Item", vec![2.into(), 10.into(), 11.into()]).unwrap();
    db.insert_exogenous("Item", vec![2.into(), 12.into(), 3.into()]).unwrap();

    let revenue = parse_program("Rev(N, SUM(V)) :- Supp(S, N), Item(S, P, V).").unwrap();
    let orders = parse_program("Cnt(N, COUNT(*)) :- Supp(S, N), Item(S, P, V).").unwrap();
    let revenue = evaluate_aggregate(&revenue, &db).unwrap();
    let orders = evaluate_aggregate(&orders, &db).unwrap();

    let service = AttributionService::start(ServeConfig::default().with_workers(2));

    // The unchanged Boolean front end: the skeletons of the aggregate
    // lineages are ordinary DNF requests.
    let tickets: Vec<_> = revenue
        .answers()
        .iter()
        .chain(orders.answers())
        .map(|answer| {
            service
                .submit(answer.lineage.dnf().clone(), RequestOptions::default())
                .expect("the demo queue has capacity")
        })
        .collect();
    let outcomes = block_on(join_all(tickets));
    assert!(outcomes.iter().all(Result::is_ok), "Boolean requests still flow");
    println!("boolean skeletons served: {}", outcomes.len());

    // Aggregate attribution against the same engine (and shared cache).
    let mut session = service.engine().session();
    for result in [&revenue, &orders] {
        for answer in result.answers() {
            let lineage = &answer.lineage;
            let attribution =
                session.attribute_aggregate(lineage).expect("no budget set in this demo");
            let kind = attribution.aggregate.expect("aggregate backends report their kind");
            println!(
                "{kind} answer {:?} via {} (total over worlds: {})",
                answer.tuple,
                attribution.algorithm,
                attribution.aggregate_total.as_ref().expect("exact backends report a total"),
            );
            let mut vars: Vec<_> = attribution.values.keys().copied().collect();
            vars.sort_unstable();
            for var in vars {
                let Score::Rational(got) = &attribution.values[&var] else {
                    panic!("exact aggregate scores are rationals");
                };
                let expected = lineage.brute_force_aggregate_banzhaf(var);
                assert_eq!(*got, expected, "aggregate Banzhaf of {var:?} disagrees");
                println!("  {var:?} -> {got}");
            }
        }
    }

    let cache = service.engine_stats().cache;
    println!("cache: {} hits, {} insertions", cache.hits, cache.insertions);
    service.shutdown();
    println!("aggregate demo OK");
}
