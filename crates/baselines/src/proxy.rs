//! The CNF Proxy ranking heuristic.
//!
//! Deutch et al. rank facts by a cheap proxy score computed on the CNF
//! representation of the lineage, without any approximation guarantee; the
//! proxy values are typically *not* close to the true attribution values but
//! the induced ranking often is (Sec. 6 of the paper). Our reproduction scores
//! a fact by the probability mass of the lineage clauses it participates in
//! under independent fair coin flips: each DNF clause `C ∋ x` contributes
//! `2^{-(|C|-1)}` — the probability that the rest of the clause is satisfied,
//! i.e. the chance that `x` is pivotal for that clause in isolation. This
//! keeps the defining characteristics of the heuristic: linear time, no
//! guarantees, good-but-not-perfect rankings.

use banzhaf_boolean::{Dnf, Var};
use std::collections::HashMap;

/// Computes the CNF-proxy score of every variable of `phi`.
pub fn cnf_proxy(phi: &Dnf) -> HashMap<Var, f64> {
    let mut scores: HashMap<Var, f64> = phi.universe().iter().map(|v| (v, 0.0)).collect();
    for clause in phi.clauses() {
        if clause.is_empty() {
            continue;
        }
        let weight = 2f64.powi(-(clause.len() as i32 - 1));
        for v in clause.iter() {
            *scores.entry(v).or_insert(0.0) += weight;
        }
    }
    scores
}

/// Ranks variables by decreasing proxy score (ties by index).
pub fn rank_proxy(scores: &HashMap<Var, f64>) -> Vec<Var> {
    let mut vars: Vec<Var> = scores.keys().copied().collect();
    vars.sort_by(|a, b| {
        scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(b))
    });
    vars
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var(i)
    }

    #[test]
    fn scores_reflect_occurrences_and_clause_sizes() {
        // φ = (x ∧ y) ∨ (x ∧ z) ∨ u.
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)], vec![v(3)]]);
        let scores = cnf_proxy(&phi);
        assert_eq!(scores[&v(0)], 1.0); // Two clauses of size 2.
        assert_eq!(scores[&v(1)], 0.5);
        assert_eq!(scores[&v(3)], 1.0); // One clause of size 1.
                                        // Unused universe variables get score 0.
        let phi = Dnf::from_clauses_with_universe(
            vec![vec![v(0)]],
            banzhaf_boolean::VarSet::from_iter([v(0), v(1)]),
        );
        assert_eq!(cnf_proxy(&phi)[&v(1)], 0.0);
    }

    #[test]
    fn proxy_ranking_often_matches_exact_ranking() {
        // On this simple lineage the proxy agrees with the exact top-1.
        let phi = Dnf::from_clauses(vec![
            vec![v(0), v(1)],
            vec![v(0), v(2)],
            vec![v(0), v(3)],
            vec![v(4), v(5)],
        ]);
        let ranking = rank_proxy(&cnf_proxy(&phi));
        assert_eq!(ranking[0], v(0));
    }

    #[test]
    fn constant_functions_have_zero_scores() {
        let t = Dnf::constant_true(banzhaf_boolean::VarSet::from_iter([v(0)]));
        assert_eq!(cnf_proxy(&t)[&v(0)], 0.0);
        let f = Dnf::constant_false(banzhaf_boolean::VarSet::from_iter([v(0)]));
        assert_eq!(cnf_proxy(&f)[&v(0)], 0.0);
    }
}
