//! CNF encoding of positive DNF lineage (the Sig22 pipeline's first step).
//!
//! A monotone DNF `φ = C₁ ∨ … ∨ Cₘ` over variables `X` is encoded into CNF
//! over `X ∪ {a₁, …, aₘ}` with one auxiliary variable per clause:
//!
//! ```text
//!   aᵢ → x        for every x ∈ Cᵢ          (¬aᵢ ∨ x)
//!   Cᵢ → aᵢ                                  (aᵢ ∨ ⋁_{x∈Cᵢ} ¬x)
//!   a₁ ∨ … ∨ aₘ                              (the function must hold)
//! ```
//!
//! The encoding is *parsimonious*: every model of `φ` over `X` extends
//! uniquely to a model of the CNF (the `aᵢ` are determined), so model counts
//! and per-variable conditioned counts — and therefore Banzhaf values of the
//! original variables — are preserved.

use banzhaf_boolean::{Dnf, Var};

/// A literal in the CNF encoding: a variable index (into the encoding's own
/// dense variable space) and a polarity.
pub(crate) type Lit = (u32, bool);

/// A CNF formula produced by encoding a lineage DNF.
#[derive(Clone, Debug)]
pub struct CnfFormula {
    /// Clauses as vectors of literals.
    pub(crate) clauses: Vec<Vec<Lit>>,
    /// Total number of variables (original + auxiliary).
    pub(crate) num_vars: u32,
    /// For each encoding variable index `< original.len()`, the original
    /// lineage variable it represents; indices `>= original.len()` are
    /// auxiliary clause variables.
    pub(crate) original: Vec<Var>,
}

impl CnfFormula {
    /// Encodes a positive DNF into CNF with auxiliary clause variables.
    ///
    /// Constant functions are encoded with zero or one trivial clause so that
    /// the compiler downstream handles them uniformly.
    pub fn encode(phi: &Dnf) -> CnfFormula {
        let original: Vec<Var> = phi.universe().iter().collect();
        let index_of = |v: Var| -> u32 {
            original.binary_search(&v).expect("clause variable is in the universe") as u32
        };
        let m = phi.num_clauses() as u32;
        let n = original.len() as u32;
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        if phi.is_true() {
            // No constraints: every assignment of the universe is a model.
            return CnfFormula { clauses, num_vars: n, original };
        }
        if phi.is_false() {
            // A single empty clause: unsatisfiable.
            clauses.push(Vec::new());
            return CnfFormula { clauses, num_vars: n, original };
        }
        for (i, clause) in phi.clauses().iter().enumerate() {
            let aux = n + i as u32;
            // aᵢ → x for each x in the clause.
            for v in clause.iter() {
                clauses.push(vec![(aux, false), (index_of(v), true)]);
            }
            // (⋀ clause) → aᵢ.
            let mut back: Vec<Lit> = clause.iter().map(|v| (index_of(v), false)).collect();
            back.push((aux, true));
            clauses.push(back);
        }
        // At least one clause of the DNF holds.
        clauses.push((0..m).map(|i| (n + i, true)).collect());
        CnfFormula { clauses, num_vars: n + m, original }
    }

    /// Number of CNF clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of variables (original + auxiliary).
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Number of original (lineage) variables.
    pub fn num_original_vars(&self) -> usize {
        self.original.len()
    }

    /// The original lineage variable for encoding index `idx`, if `idx` is not
    /// an auxiliary variable.
    pub fn original_var(&self, idx: u32) -> Option<Var> {
        self.original.get(idx as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var(i)
    }

    /// Brute-force model count of the CNF restricted over all its variables.
    fn cnf_model_count(cnf: &CnfFormula) -> u64 {
        let n = cnf.num_vars();
        assert!(n <= 22);
        let mut count = 0;
        'outer: for mask in 0u64..(1 << n) {
            for clause in &cnf.clauses {
                let satisfied = clause.iter().any(|&(var, pos)| {
                    let value = mask & (1 << var) != 0;
                    value == pos
                });
                if !satisfied {
                    continue 'outer;
                }
            }
            count += 1;
        }
        count
    }

    #[test]
    fn encoding_preserves_model_count() {
        let functions = vec![
            Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)]]),
            Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)], vec![v(2), v(3)]]),
            Dnf::from_clauses(vec![vec![v(0)], vec![v(1), v(2)]]),
        ];
        for phi in functions {
            let cnf = CnfFormula::encode(&phi);
            assert_eq!(
                cnf_model_count(&cnf),
                phi.brute_force_model_count().to_u64().unwrap(),
                "{phi}"
            );
        }
    }

    #[test]
    fn encoding_shape() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)]]);
        let cnf = CnfFormula::encode(&phi);
        assert_eq!(cnf.num_original_vars(), 3);
        assert_eq!(cnf.num_vars(), 5); // 3 original + 2 auxiliary.
                                       // 2 clauses × (2 implications + 1 back implication) + 1 top clause.
        assert_eq!(cnf.num_clauses(), 2 * 3 + 1);
        assert_eq!(cnf.original_var(0), Some(v(0)));
        assert_eq!(cnf.original_var(4), None);
    }

    #[test]
    fn constants() {
        let t = Dnf::constant_true(banzhaf_boolean::VarSet::from_iter([v(0), v(1)]));
        let cnf = CnfFormula::encode(&t);
        assert_eq!(cnf_model_count(&cnf), 4);
        let f = Dnf::constant_false(banzhaf_boolean::VarSet::from_iter([v(0), v(1)]));
        let cnf = CnfFormula::encode(&f);
        assert_eq!(cnf_model_count(&cnf), 0);
    }
}
