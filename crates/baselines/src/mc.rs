//! Monte Carlo approximation of Banzhaf values (the `MC` baseline).
//!
//! For each variable `x`, sample uniformly random subsets `Y ⊆ X∖{x}` and
//! average the marginal contribution `φ[Y ∪ {x}] − φ[Y]`; the Banzhaf value is
//! `2^{n−1}` times that expectation. This is the randomized
//! absolute-error scheme of Livshits et al. adapted from Shapley to Banzhaf
//! (Sec. 5.1 and Sec. 6 of the paper): it gives only probabilistic guarantees,
//! one more sample may make the estimate worse, and it treats the lineage as a
//! black box.
//!
//! Sampling is organized in **per-variable seed streams**: variable `i` draws
//! its samples from a generator seeded by `derive(seed, i)` rather than from
//! one RNG advancing across the whole run. The sample set is therefore a pure
//! function of `(seed, lineage, options)` — independent of iteration order —
//! which is what lets [`mc_banzhaf_par`] fan the per-variable loops across a
//! [`ThreadPool`] and still return **bit-identical estimates at every thread
//! count**.

use banzhaf_arith::Natural;
use banzhaf_boolean::{Assignment, Dnf, Var, WeightedDnf};
use banzhaf_dtree::{Budget, Interrupted};
use banzhaf_par::{seed, ThreadPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Configuration of the Monte Carlo estimator.
#[derive(Clone, Copy, Debug)]
pub struct McOptions {
    /// Number of samples drawn *per variable*. The paper's `MC50#vars`
    /// configuration corresponds to 50 samples per variable.
    pub samples_per_var: u64,
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions { samples_per_var: 50 }
    }
}

/// Estimates the Banzhaf value of every variable of `phi` by Monte Carlo
/// sampling on the calling thread. Returns point estimates (possibly
/// non-integral) per variable.
///
/// Equivalent to [`mc_banzhaf_par`] on a sequential pool; both produce the
/// same estimates for the same `seed`.
pub fn mc_banzhaf(
    phi: &Dnf,
    options: &McOptions,
    seed: u64,
    budget: &Budget,
) -> Result<HashMap<Var, f64>, Interrupted> {
    mc_banzhaf_par(phi, options, seed, budget, &ThreadPool::sequential())
}

/// Estimates the Banzhaf value of every variable of `phi`, fanning the
/// per-variable sampling loops across `pool`.
///
/// Estimates are **bit-identical to the sequential path** for any thread
/// count: each variable's samples come from its own derived seed stream, so
/// scheduling never changes what is sampled. The `budget` is shared by all
/// workers (its counters are atomic); a step cap counts samples globally, so
/// under a tight cap the parallel and sequential runs both fail with
/// [`Interrupted`] but may interrupt while working on different variables.
pub fn mc_banzhaf_par(
    phi: &Dnf,
    options: &McOptions,
    seed: u64,
    budget: &Budget,
    pool: &ThreadPool,
) -> Result<HashMap<Var, f64>, Interrupted> {
    let vars: Vec<Var> = phi.universe().iter().collect();
    let n = vars.len();
    let scale = Natural::pow2(n.saturating_sub(1)).to_f64();
    let estimates = pool.parallel_map(&vars, |i, &x| {
        let mut rng = StdRng::seed_from_u64(seed::derive(seed, i as u64));
        estimate_one(phi, &vars, x, *options, &mut rng, budget).map(|mean| mean * scale)
    });
    vars.into_iter()
        .zip(estimates)
        .map(|(x, estimate)| estimate.map(|e| (x, e)))
        .collect::<Result<HashMap<Var, f64>, Interrupted>>()
}

/// One variable's sampling loop: the mean marginal contribution of `x` over
/// `options.samples_per_var` uniform subsets of `vars ∖ {x}`.
fn estimate_one(
    phi: &Dnf,
    vars: &[Var],
    x: Var,
    options: McOptions,
    rng: &mut StdRng,
    budget: &Budget,
) -> Result<f64, Interrupted> {
    let mut positive_flips = 0u64;
    for _ in 0..options.samples_per_var {
        budget.step()?;
        // Sample Y ⊆ X∖{x} uniformly.
        let mut assignment = Assignment::empty();
        for &y in vars {
            if y != x && rng.gen_bool(0.5) {
                assignment.set(y, true);
            }
        }
        let without = phi.evaluate(&assignment);
        if without {
            // Monotone lineage: adding x cannot turn the query false, so
            // the marginal contribution is 0.
            continue;
        }
        assignment.set(x, true);
        if phi.evaluate(&assignment) {
            positive_flips += 1;
        }
    }
    Ok(positive_flips as f64 / options.samples_per_var.max(1) as f64)
}

/// Estimates the *aggregate* Banzhaf value of every variable of `w`, fanning
/// the per-variable sampling loops across `pool`.
///
/// The scheme is [`mc_banzhaf_par`]'s, with the Boolean marginal
/// `φ[Y∪{x}] − φ[Y]` replaced by the aggregate marginal
/// `val(Y∪{x}) − val(Y)` evaluated through [`WeightedDnf::evaluate`] — so one
/// sampler serves COUNT/SUM/MIN/MAX alike, signed marginals included (MIN
/// attribution can be negative). Per-variable seed streams keep the estimates
/// bit-identical at every thread count, exactly as in the Boolean sampler.
pub fn mc_aggregate_banzhaf_par(
    w: &WeightedDnf,
    options: &McOptions,
    seed: u64,
    budget: &Budget,
    pool: &ThreadPool,
) -> Result<HashMap<Var, f64>, Interrupted> {
    let vars: Vec<Var> = w.universe().iter().collect();
    let n = vars.len();
    let scale = Natural::pow2(n.saturating_sub(1)).to_f64();
    let estimates = pool.parallel_map(&vars, |i, &x| {
        let mut rng = StdRng::seed_from_u64(seed::derive(seed, i as u64));
        estimate_one_aggregate(w, &vars, x, *options, &mut rng, budget).map(|mean| mean * scale)
    });
    vars.into_iter()
        .zip(estimates)
        .map(|(x, estimate)| estimate.map(|e| (x, e)))
        .collect::<Result<HashMap<Var, f64>, Interrupted>>()
}

/// One variable's aggregate sampling loop: the mean aggregate marginal of `x`
/// over `options.samples_per_var` uniform subsets of `vars ∖ {x}`.
fn estimate_one_aggregate(
    w: &WeightedDnf,
    vars: &[Var],
    x: Var,
    options: McOptions,
    rng: &mut StdRng,
    budget: &Budget,
) -> Result<f64, Interrupted> {
    let mut sum = 0.0f64;
    for _ in 0..options.samples_per_var {
        budget.step()?;
        // Sample Y ⊆ X∖{x} uniformly.
        let mut assignment = Assignment::empty();
        for &y in vars {
            if y != x && rng.gen_bool(0.5) {
                assignment.set(y, true);
            }
        }
        let without = w.evaluate(&assignment);
        assignment.set(x, true);
        let with = w.evaluate(&assignment);
        sum += (with - without).to_f64();
    }
    Ok(sum / options.samples_per_var.max(1) as f64)
}

/// Ranks variables by decreasing Monte Carlo estimate (ties by index).
pub fn rank_estimates(estimates: &HashMap<Var, f64>) -> Vec<Var> {
    let mut vars: Vec<Var> = estimates.keys().copied().collect();
    vars.sort_by(|a, b| {
        estimates[b].partial_cmp(&estimates[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(b))
    });
    vars
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var(i)
    }

    #[test]
    fn converges_to_exact_values_on_small_functions() {
        // φ = (x ∧ y) ∨ (x ∧ z) ∨ u: exact values x:3, y:1, z:1, u:5.
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)], vec![v(3)]]);
        let options = McOptions { samples_per_var: 20_000 };
        let estimates = mc_banzhaf(&phi, &options, 42, &Budget::unlimited()).unwrap();
        let exact = [(v(0), 3.0), (v(1), 1.0), (v(2), 1.0), (v(3), 5.0)];
        for (x, expected) in exact {
            let got = estimates[&x];
            assert!(
                (got - expected).abs() < 0.35,
                "estimate for {x} too far off: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn ranking_recovers_clear_winner() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)], vec![v(3)]]);
        let options = McOptions { samples_per_var: 5_000 };
        let estimates = mc_banzhaf(&phi, &options, 7, &Budget::unlimited()).unwrap();
        let ranking = rank_estimates(&estimates);
        assert_eq!(ranking[0], v(3));
    }

    #[test]
    fn deterministic_given_seed() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)]]);
        let options = McOptions { samples_per_var: 100 };
        let a = mc_banzhaf(&phi, &options, 1, &Budget::unlimited()).unwrap();
        let b = mc_banzhaf(&phi, &options, 1, &Budget::unlimited()).unwrap();
        assert_eq!(a, b);
        let c = mc_banzhaf(&phi, &options, 2, &Budget::unlimited()).unwrap();
        assert_ne!(a, c, "different seeds draw different sample sets");
    }

    #[test]
    fn parallel_estimates_bit_identical_to_sequential() {
        let phi = Dnf::from_clauses(vec![
            vec![v(0), v(1)],
            vec![v(1), v(2)],
            vec![v(2), v(3)],
            vec![v(3), v(4)],
            vec![v(4), v(0)],
        ]);
        let options = McOptions { samples_per_var: 500 };
        let sequential = mc_banzhaf(&phi, &options, 0xBA27AF, &Budget::unlimited()).unwrap();
        for threads in [2, 3, 4] {
            let pool = ThreadPool::new(threads);
            let parallel =
                mc_banzhaf_par(&phi, &options, 0xBA27AF, &Budget::unlimited(), &pool).unwrap();
            assert_eq!(sequential, parallel, "thread count {threads} changed the sample set");
        }
    }

    #[test]
    fn aggregate_estimates_converge_and_stay_thread_invariant() {
        use banzhaf_arith::Rational;
        use banzhaf_boolean::AggregateKind;
        let w = WeightedDnf::from_weighted_clauses(
            AggregateKind::Sum,
            vec![
                (vec![v(0), v(1)], Rational::from(3i64)),
                (vec![v(0), v(2)], Rational::from(-2i64)),
                (vec![v(3)], Rational::from(7i64)),
            ],
        );
        let options = McOptions { samples_per_var: 20_000 };
        let estimates = mc_aggregate_banzhaf_par(
            &w,
            &options,
            42,
            &Budget::unlimited(),
            &ThreadPool::sequential(),
        )
        .unwrap();
        for x in w.universe().iter() {
            let exact = w.brute_force_aggregate_banzhaf(x).to_f64();
            let got = estimates[&x];
            assert!((got - exact).abs() < 1.5, "estimate for {x} too far off: {got} vs {exact}");
        }
        // Bit-identical across thread counts (per-variable seed streams).
        for threads in [2, 4] {
            let pool = ThreadPool::new(threads);
            let parallel =
                mc_aggregate_banzhaf_par(&w, &options, 42, &Budget::unlimited(), &pool).unwrap();
            assert_eq!(estimates, parallel, "thread count {threads} changed the sample set");
        }
    }

    #[test]
    fn aggregate_min_marginals_can_be_negative() {
        use banzhaf_arith::Rational;
        use banzhaf_boolean::AggregateKind;
        // MIN with a strongly negative clause: the fact enabling it drags the
        // minimum down, so its attribution is negative.
        let w = WeightedDnf::from_weighted_clauses(
            AggregateKind::Min,
            vec![(vec![v(0)], Rational::from(-8i64)), (vec![v(1)], Rational::from(5i64))],
        );
        let options = McOptions { samples_per_var: 5_000 };
        let estimates = mc_aggregate_banzhaf_par(
            &w,
            &options,
            7,
            &Budget::unlimited(),
            &ThreadPool::sequential(),
        )
        .unwrap();
        assert!(estimates[&v(0)] < 0.0, "negative attribution survives sampling");
        assert!(w.brute_force_aggregate_banzhaf(v(0)).is_negative());
    }

    #[test]
    fn budget_exhaustion() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)]]);
        let options = McOptions { samples_per_var: 1_000 };
        let result = mc_banzhaf(&phi, &options, 1, &Budget::with_max_steps(10));
        assert_eq!(result.unwrap_err(), Interrupted);
        // The shared budget also interrupts the parallel path.
        let pool = ThreadPool::new(4);
        let result = mc_banzhaf_par(&phi, &options, 1, &Budget::with_max_steps(10), &pool);
        assert_eq!(result.unwrap_err(), Interrupted);
    }
}
