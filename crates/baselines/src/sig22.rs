//! The Sig22-style exact baseline: CNF knowledge compilation + marginal
//! counting.
//!
//! Pipeline (mirroring Deutch et al. 2022, adapted to Banzhaf values):
//!
//! 1. encode the lineage DNF into CNF with auxiliary clause variables
//!    ([`crate::CnfFormula`]);
//! 2. compile the CNF with a DPLL-style recursion: connected-component
//!    decomposition where possible, otherwise branch (Shannon-expand) on the
//!    most frequent CNF variable;
//! 3. during the recursion, compute for every variable its *marginal* model
//!    count (the number of models in which it is true) alongside the total
//!    model count;
//! 4. `Banzhaf(x) = #φ[x:=1] − #φ[x:=0] = 2·marginal(x) − #φ` for every
//!    original (non-auxiliary) variable.
//!
//! The original system delegates step 2 to an off-the-shelf compiler with
//! component caching; this re-implementation keeps the same architecture but
//! omits the cache, which only makes the baseline's constants worse — the
//! qualitative comparison of the paper (ExaBan wins because it avoids the CNF
//! detour and exploits DNF structure directly) is preserved.

use crate::cnf::{CnfFormula, Lit};
use banzhaf_arith::{Int, Natural};
use banzhaf_boolean::Var;
use banzhaf_dtree::{Budget, Interrupted};
use std::collections::HashMap;

/// Result of the Sig22 baseline: exact Banzhaf values and model count.
#[derive(Clone, Debug)]
pub struct Sig22Result {
    /// Exact Banzhaf value per original lineage variable.
    pub values: HashMap<Var, Natural>,
    /// Exact model count of the lineage.
    pub model_count: Natural,
    /// Number of DPLL recursion nodes explored (a proxy for compiled circuit
    /// size, reported by the benchmark harness).
    pub nodes_explored: u64,
}

impl Sig22Result {
    /// The Banzhaf value of `v`, if it is a lineage variable.
    pub fn value(&self, v: Var) -> Option<&Natural> {
        self.values.get(&v)
    }

    /// Variables sorted by decreasing Banzhaf value (ties by index).
    pub fn ranking(&self) -> Vec<(Var, Natural)> {
        let mut items: Vec<(Var, Natural)> =
            self.values.iter().map(|(v, b)| (*v, b.clone())).collect();
        items.sort_by(|(va, ba), (vb, bb)| bb.cmp(ba).then(va.cmp(vb)));
        items
    }
}

/// A sub-problem of the DPLL recursion: a set of clauses over a set of
/// still-free variables.
struct SubProblem {
    clauses: Vec<Vec<Lit>>,
    vars: Vec<u32>,
}

/// Count + per-variable marginal counts for a sub-problem.
struct Counts {
    total: Natural,
    /// `marginal[v]` = number of models in which variable `v` is true; every
    /// free variable of the sub-problem has an entry.
    marginal: HashMap<u32, Natural>,
}

/// Runs the Sig22-style exact Banzhaf computation on the lineage `phi`.
pub fn sig22_exact(
    phi: &banzhaf_boolean::Dnf,
    budget: &Budget,
) -> Result<Sig22Result, Interrupted> {
    let cnf = CnfFormula::encode(phi);
    let problem = SubProblem { clauses: cnf.clauses.clone(), vars: (0..cnf.num_vars).collect() };
    let mut nodes = 0u64;
    let counts = count(problem, budget, &mut nodes)?;
    let mut values = HashMap::with_capacity(cnf.num_original_vars());
    for idx in 0..cnf.num_original_vars() as u32 {
        let original = cnf.original_var(idx).expect("index below original count");
        let marginal = counts.marginal.get(&idx).cloned().unwrap_or_else(Natural::zero);
        // Banzhaf = marginal − (total − marginal).
        let banzhaf = Int::sub_naturals(&marginal, &(&counts.total - &marginal));
        debug_assert!(!banzhaf.is_negative(), "positive lineage has non-negative Banzhaf values");
        let banzhaf =
            if banzhaf.is_negative() { Natural::zero() } else { banzhaf.into_magnitude() };
        values.insert(original, banzhaf);
    }
    Ok(Sig22Result { values, model_count: counts.total, nodes_explored: nodes })
}

fn count(problem: SubProblem, budget: &Budget, nodes: &mut u64) -> Result<Counts, Interrupted> {
    budget.step()?;
    *nodes += 1;
    // Empty clause: unsatisfiable.
    if problem.clauses.iter().any(Vec::is_empty) {
        return Ok(Counts {
            total: Natural::zero(),
            marginal: problem.vars.iter().map(|&v| (v, Natural::zero())).collect(),
        });
    }
    // No clauses: all assignments of the free variables are models.
    if problem.clauses.is_empty() {
        let n = problem.vars.len();
        let total = Natural::pow2(n);
        let half = Natural::pow2(n.saturating_sub(1));
        let marginal = problem.vars.iter().map(|&v| (v, half.clone())).collect();
        return Ok(Counts { total, marginal });
    }
    // Connected-component decomposition.
    if let Some(components) = split_components(&problem) {
        let mut totals = Vec::with_capacity(components.len());
        let mut marginals = Vec::with_capacity(components.len());
        for component in components {
            let c = count(component, budget, nodes)?;
            totals.push(c.total);
            marginals.push(c.marginal);
        }
        // Total is the product; a variable's marginal is its component
        // marginal times the totals of all other components.
        let mut prefix = vec![Natural::one(); totals.len() + 1];
        for (i, t) in totals.iter().enumerate() {
            prefix[i + 1] = prefix[i].mul_ref(t);
        }
        let mut suffix = vec![Natural::one(); totals.len() + 1];
        for i in (0..totals.len()).rev() {
            suffix[i] = suffix[i + 1].mul_ref(&totals[i]);
        }
        let mut marginal = HashMap::new();
        for (i, m) in marginals.into_iter().enumerate() {
            let others = prefix[i].mul_ref(&suffix[i + 1]);
            for (v, c) in m {
                marginal.insert(v, c.mul_ref(&others));
            }
        }
        return Ok(Counts { total: prefix[totals.len()].clone(), marginal });
    }
    // Branch on the most frequent variable.
    let pivot = most_frequent_var(&problem);
    let hi = condition(&problem, pivot, true);
    let lo = condition(&problem, pivot, false);
    let hi_counts = count(hi, budget, nodes)?;
    let lo_counts = count(lo, budget, nodes)?;
    let total = &hi_counts.total + &lo_counts.total;
    let mut marginal = HashMap::with_capacity(problem.vars.len());
    for &v in &problem.vars {
        if v == pivot {
            marginal.insert(v, hi_counts.total.clone());
        } else {
            let hi_m = hi_counts.marginal.get(&v).cloned().unwrap_or_else(Natural::zero);
            let lo_m = lo_counts.marginal.get(&v).cloned().unwrap_or_else(Natural::zero);
            marginal.insert(v, &hi_m + &lo_m);
        }
    }
    Ok(Counts { total, marginal })
}

/// Splits the sub-problem into connected components (by shared variables).
/// Free variables occurring in no clause form their own unconstrained
/// component. Returns `None` if there is a single component covering all
/// variables.
fn split_components(problem: &SubProblem) -> Option<Vec<SubProblem>> {
    // Union-find over variables.
    let index: HashMap<u32, usize> =
        problem.vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut parent: Vec<usize> = (0..problem.vars.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for clause in &problem.clauses {
        let mut it = clause.iter();
        if let Some(&(first, _)) = it.next() {
            let fi = index[&first];
            for &(v, _) in it {
                let (a, b) = (find(&mut parent, fi), find(&mut parent, index[&v]));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<u32>> = HashMap::new();
    for (i, &v) in problem.vars.iter().enumerate() {
        groups.entry(find(&mut parent, i)).or_default().push(v);
    }
    // Only variables occurring in clauses can be connected; count components
    // among clause variables plus one unconstrained group if any.
    let mut clause_vars: Vec<u32> = problem.clauses.iter().flatten().map(|&(v, _)| v).collect();
    clause_vars.sort_unstable();
    clause_vars.dedup();
    let constrained_groups: Vec<&Vec<u32>> = groups
        .values()
        .filter(|g| g.iter().any(|v| clause_vars.binary_search(v).is_ok()))
        .collect();
    let unconstrained: Vec<u32> =
        problem.vars.iter().copied().filter(|v| clause_vars.binary_search(v).is_err()).collect();
    if constrained_groups.len() <= 1 && unconstrained.is_empty() {
        return None;
    }
    let mut components = Vec::new();
    for group in constrained_groups {
        let group_set: std::collections::HashSet<u32> = group.iter().copied().collect();
        let clauses: Vec<Vec<Lit>> = problem
            .clauses
            .iter()
            .filter(|c| c.first().is_some_and(|&(v, _)| group_set.contains(&v)))
            .cloned()
            .collect();
        let mut vars: Vec<u32> = group.iter().copied().filter(|v| group_set.contains(v)).collect();
        vars.retain(|v| clause_vars.binary_search(v).is_ok());
        vars.sort_unstable();
        components.push(SubProblem { clauses, vars });
    }
    if !unconstrained.is_empty() {
        components.push(SubProblem { clauses: Vec::new(), vars: unconstrained });
    }
    Some(components)
}

fn most_frequent_var(problem: &SubProblem) -> u32 {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for clause in &problem.clauses {
        for &(v, _) in clause {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .max_by(|(v1, c1), (v2, c2)| c1.cmp(c2).then(v2.cmp(v1)))
        .map(|(v, _)| v)
        .expect("non-empty clause set has variables")
}

/// Conditions the sub-problem on `pivot := value`, removing satisfied clauses
/// and falsified literals.
fn condition(problem: &SubProblem, pivot: u32, value: bool) -> SubProblem {
    let mut clauses = Vec::with_capacity(problem.clauses.len());
    for clause in &problem.clauses {
        if clause.iter().any(|&(v, pos)| v == pivot && pos == value) {
            continue; // Clause satisfied.
        }
        let reduced: Vec<Lit> = clause.iter().copied().filter(|&(v, _)| v != pivot).collect();
        clauses.push(reduced);
    }
    let vars = problem.vars.iter().copied().filter(|&v| v != pivot).collect();
    SubProblem { clauses, vars }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banzhaf_boolean::Dnf;

    fn v(i: u32) -> Var {
        Var(i)
    }

    #[test]
    fn matches_brute_force() {
        let functions = vec![
            Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)]]),
            Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)], vec![v(2), v(3)]]),
            Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)], vec![v(3)]]),
            Dnf::from_clauses(vec![vec![v(0)], vec![v(1), v(2)], vec![v(3), v(4), v(5)]]),
        ];
        for phi in functions {
            let result = sig22_exact(&phi, &Budget::unlimited()).unwrap();
            assert_eq!(result.model_count, phi.brute_force_model_count(), "{phi}");
            for x in phi.universe().iter() {
                assert_eq!(
                    Int::from(result.value(x).unwrap().clone()),
                    phi.brute_force_banzhaf(x),
                    "{phi} {x}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_exaban() {
        use banzhaf::{exaban_all, DTree, PivotHeuristic};
        let phi = Dnf::from_clauses(vec![
            vec![v(0), v(1)],
            vec![v(1), v(2)],
            vec![v(2), v(3)],
            vec![v(3), v(4)],
            vec![v(4), v(0)],
        ]);
        let tree =
            DTree::compile_full(phi.clone(), PivotHeuristic::MostFrequent, &Budget::unlimited())
                .unwrap();
        let exact = exaban_all(&tree);
        let sig = sig22_exact(&phi, &Budget::unlimited()).unwrap();
        assert_eq!(exact.model_count, sig.model_count);
        for x in phi.universe().iter() {
            assert_eq!(exact.value(x), sig.value(x), "{x}");
        }
    }

    #[test]
    fn constants_and_unused_vars() {
        let phi = Dnf::from_clauses_with_universe(
            vec![vec![v(0)]],
            banzhaf_boolean::VarSet::from_iter([v(0), v(1)]),
        );
        let result = sig22_exact(&phi, &Budget::unlimited()).unwrap();
        assert_eq!(result.model_count.to_u64(), Some(2));
        assert_eq!(result.value(v(0)).unwrap().to_u64(), Some(2));
        assert_eq!(result.value(v(1)).unwrap().to_u64(), Some(0));
    }

    #[test]
    fn budget_exhaustion() {
        let phi = Dnf::from_clauses(vec![
            vec![v(0), v(1)],
            vec![v(1), v(2)],
            vec![v(2), v(3)],
            vec![v(3), v(0)],
        ]);
        let result = sig22_exact(&phi, &Budget::with_max_steps(2));
        assert_eq!(result.unwrap_err(), Interrupted);
    }

    #[test]
    fn ranking_output() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)], vec![v(3)]]);
        let result = sig22_exact(&phi, &Budget::unlimited()).unwrap();
        let ranking = result.ranking();
        assert_eq!(ranking[0].0, v(3));
        assert_eq!(ranking[1].0, v(0));
        assert!(result.nodes_explored > 0);
    }
}
