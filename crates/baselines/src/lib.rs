//! Competitor algorithms from prior work, adapted to Banzhaf values.
//!
//! The experimental evaluation of the paper (Sec. 5.1) compares ExaBan /
//! AdaBan / IchiBan against three baselines, which this crate re-implements
//! from scratch:
//!
//! * [`sig22_exact`] — the exact-computation pipeline of Deutch et al.
//!   (SIGMOD 2022), adapted from Shapley to Banzhaf values: encode the lineage
//!   into CNF (Tseitin-style, one auxiliary variable per clause), compile the
//!   CNF with a DPLL-style knowledge compiler (branching + connected-component
//!   decomposition), and read off `#φ[x:=1]` / `#φ[x:=0]` for every fact.
//!   The paper used an off-the-shelf compiler (c2d/dsharp); our from-scratch
//!   compiler follows the same architecture (see DESIGN.md for the
//!   substitution rationale) and in particular shares its key weakness: the
//!   detour through CNF.
//! * [`mc_banzhaf`] — the Monte Carlo randomized approximation of Livshits et
//!   al., sampling random fact subsets and averaging the marginal
//!   contribution.
//! * [`cnf_proxy`] — the CNF Proxy ranking heuristic: a cheap occurrence-based
//!   score with no guarantees, used only for ranking/top-k comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
mod mc;
mod proxy;
mod sig22;

pub use cnf::CnfFormula;
pub use mc::{mc_aggregate_banzhaf_par, mc_banzhaf, mc_banzhaf_par, rank_estimates, McOptions};
pub use proxy::{cnf_proxy, rank_proxy};
pub use sig22::{sig22_exact, Sig22Result};
