//! Umbrella crate for the reproduction of *Banzhaf Values for Facts in Query
//! Answering* (SIGMOD 2024).
//!
//! This crate simply re-exports the public API of the workspace members so
//! that downstream users (and the examples and integration tests in this
//! repository) can depend on a single crate:
//!
//! * [`engine`] — **the primary API**: the [`prelude::Engine`] /
//!   [`prelude::Session`] pipeline and the pluggable [`prelude::Attributor`]
//!   trait over every algorithm;
//! * [`arith`] — arbitrary-precision integers and rationals;
//! * [`boolean`] — positive DNF lineage functions;
//! * [`dtree`] — decomposition-tree knowledge compilation;
//! * [`serve`] — the async serving layer: a bounded request queue, worker
//!   sessions over the engine's shared cross-session cache, per-request
//!   budgets and cooperative cancellation;
//! * [`par`] — the scoped thread pool powering batch-parallel attribution;
//! * [`core`] — ExaBan / AdaBan / IchiBan / Shapley (the paper's algorithms);
//! * [`db`] — the in-memory relational database substrate;
//! * [`query`] — UCQ parsing, analysis and provenance-aware evaluation;
//! * [`baselines`] — the Sig22, Monte Carlo and CNF-proxy competitors;
//! * [`workloads`] — synthetic corpora standing in for Academic/IMDB/TPC-H.
//!
//! The most common entry points are re-exported at the top level.
//!
//! ```
//! use banzhaf_repro::prelude::*;
//!
//! let mut db = Database::new();
//! db.add_relation("R", 1);
//! db.add_relation("S", 2);
//! db.insert_endogenous("R", vec![1.into()]).unwrap();
//! db.insert_endogenous("S", vec![1.into(), 2.into()]).unwrap();
//! let query = parse_program("Q() :- R(X), S(X, Y).").unwrap();
//!
//! let engine = Engine::new(EngineConfig::default());
//! let explained = engine.session().explain(&query, &db);
//! let attribution = explained.answers[0].attribution().expect("unlimited budget");
//! assert_eq!(attribution.model_count.as_ref().unwrap().to_u64(), Some(1));
//!
//! // Keep attributions live under single-fact updates: only answers whose
//! // lineage mentions the touched fact are re-derived.
//! let mut live = engine.live_session(db);
//! live.register("q", query);
//! let report = live.apply_update(Update::insert("S", vec![1.into(), 3.into()])).unwrap();
//! assert_eq!(report.touched.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use banzhaf as core;
pub use banzhaf_arith as arith;
pub use banzhaf_baselines as baselines;
pub use banzhaf_boolean as boolean;
pub use banzhaf_db as db;
pub use banzhaf_dtree as dtree;
pub use banzhaf_engine as engine;
pub use banzhaf_par as par;
pub use banzhaf_query as query;
pub use banzhaf_serve as serve;
pub use banzhaf_workloads as workloads;

/// Convenient glob-import of the most frequently used items.
pub mod prelude {
    pub use banzhaf_engine::{
        Algorithm, AnswerAttribution, AnswerChange, Attribution, Attributor, BatchOptions,
        CacheConfig, CacheStats, Degradation, DegradeReason, Engine, EngineConfig, EngineSnapshot,
        EngineStats, FallbackPolicy, LiveSession, LiveStats, QueryAttribution, Ranked, Rung, Score,
        Session, SessionStats, ShardedCache, SharedCache, SnapshotError, TouchedAnswer,
        UpdateReport,
    };
    pub use banzhaf_serve::{
        block_on, join_all, AttributionService, Rejected, RequestOptions, RetryPolicy, ServeConfig,
        ServeError, ServiceStats, Ticket, UpdateTicket,
    };

    pub use banzhaf::{
        adaban, adaban_all, bounds_for_var, critical_counts_all, exaban_all, exaban_single,
        ichiban_rank, ichiban_topk, l1_distance_normalized, normalized_index, normalized_power,
        shapley_all, AdaBanOptions, ApproxInterval, BanzhafResult, Budget, DTree, IchiBanOptions,
        Interrupted, PivotHeuristic, Ranking, ShapleyValue, TopK,
    };
    pub use banzhaf_arith::{Int, Natural, Ratio, Rational};
    pub use banzhaf_baselines::{cnf_proxy, mc_banzhaf, mc_banzhaf_par, sig22_exact, McOptions};
    pub use banzhaf_boolean::{AggregateKind, Assignment, Clause, Dnf, Var, VarSet, WeightedDnf};
    pub use banzhaf_db::{Database, Fact, FactId, Provenance, Update, Value};
    pub use banzhaf_par::ThreadPool;
    pub use banzhaf_query::{
        evaluate, evaluate_aggregate, is_hierarchical, is_self_join_free, parse_program,
        AggregateAnswer, AggregateError, AggregateResult, AggregateSpec, UnionQuery,
    };
    pub use banzhaf_workloads::{
        academic_like, academic_workload, imdb_like, imdb_workload, tpch_like, tpch_workload,
        Corpus, DatasetSpec, LineageGenerator, LineageShape, LiveWorkload,
    };
}
