//! Auditing supplier influence in a TPC-H-like order database.
//!
//! A procurement analyst asks which nations have customers buying from
//! same-nation suppliers (a classic TPC-H-style join) and then wants to know,
//! for a given nation, which individual orders and line items drive that
//! answer — ranked by Banzhaf value, with an anytime approximation so the
//! analysis stays interactive even when the lineage is large.
//!
//! Run with `cargo run --release --example supplier_audit`.

use banzhaf_repro::prelude::*;

fn main() {
    // Build a synthetic TPC-H-like corpus; dimension data (nations) is
    // exogenous, transactional data (suppliers, customers, orders, line
    // items) is endogenous.
    let corpus = tpch_like(&DatasetSpec::default());
    let stats = corpus.stats();
    println!(
        "TPC-H-like corpus: {} queries, {} answer lineages, up to {} variables / {} clauses",
        stats.num_queries, stats.num_lineages, stats.max_vars, stats.max_clauses
    );

    // Focus on the per-nation trade query (the corpus's tpch_q1) and pick its
    // largest answer lineage.
    let instance = corpus
        .instances_of("tpch_q1")
        .max_by_key(|i| i.lineage.size())
        .expect("corpus contains the trade query");
    println!(
        "\nauditing answer nation={} ({} supporting facts, {} join combinations)",
        instance.answer,
        instance.lineage.num_vars(),
        instance.lineage.num_clauses()
    );

    // Anytime approximation: certified intervals at ε = 0.1 within a budget.
    let vars: Vec<Var> = instance.lineage.universe().iter().collect();
    let mut tree = DTree::from_leaf(instance.lineage.clone());
    let budget = Budget::with_timeout(std::time::Duration::from_secs(5));
    match adaban_all(&mut tree, &vars, &AdaBanOptions::with_epsilon_str("0.1"), &budget) {
        Ok(intervals) => {
            let mut ranked = intervals;
            ranked.sort_by(|a, b| b.1.midpoint().partial_cmp(&a.1.midpoint()).unwrap());
            println!("\ntop 10 facts by approximate Banzhaf value (ε = 0.1):");
            for (var, interval) in ranked.into_iter().take(10) {
                println!("  fact f{:<4} Banzhaf ∈ [{}, {}]", var.0, interval.lower, interval.upper);
            }
        }
        Err(Interrupted) => {
            println!("approximation did not finish within the 5s budget");
        }
    }

    // Certified top-3 facts (interval separation, no ε), under a budget.
    let mut tree = DTree::from_leaf(instance.lineage.clone());
    let budget = Budget::with_timeout(std::time::Duration::from_secs(5));
    match ichiban_topk(&mut tree, 3, &IchiBanOptions::certain(), &budget) {
        Ok(topk) => {
            println!(
                "\ncertified top-3 facts: {:?} (certified = {})",
                topk.members.iter().map(|v| format!("f{}", v.0)).collect::<Vec<_>>(),
                topk.certified
            );
        }
        Err(Interrupted) => {
            println!("\ncertified top-3 needs more than the 5s budget; falling back to ε-relaxed");
            let mut tree = DTree::from_leaf(instance.lineage.clone());
            let topk = ichiban_topk(
                &mut tree,
                3,
                &IchiBanOptions::with_epsilon_str("0.1"),
                &Budget::with_timeout(std::time::Duration::from_secs(5)),
            );
            if let Ok(topk) = topk {
                println!(
                    "ε-relaxed top-3 facts: {:?}",
                    topk.members.iter().map(|v| format!("f{}", v.0)).collect::<Vec<_>>()
                );
            }
        }
    }

    // Compare against the cheap CNF-proxy heuristic ranking.
    let proxy = cnf_proxy(&instance.lineage);
    let mut proxy_ranked: Vec<(Var, f64)> = proxy.into_iter().collect();
    proxy_ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "\nCNF-proxy top-3 (no guarantees): {:?}",
        proxy_ranked.iter().take(3).map(|(v, _)| format!("f{}", v.0)).collect::<Vec<_>>()
    );
}
