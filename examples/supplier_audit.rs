//! Auditing supplier influence in a TPC-H-like order database.
//!
//! A procurement analyst asks which nations have customers buying from
//! same-nation suppliers (a classic TPC-H-style join) and then wants to know,
//! for a given nation, which individual orders and line items drive that
//! answer — ranked by Banzhaf value, with an anytime approximation so the
//! analysis stays interactive even when the lineage is large. Every
//! algorithm runs behind the same engine configuration; only the
//! `Algorithm` choice changes.
//!
//! Run with `cargo run --release --example supplier_audit`.

use banzhaf_repro::prelude::*;
use std::time::Duration;

fn main() {
    // Build a synthetic TPC-H-like corpus; dimension data (nations) is
    // exogenous, transactional data (suppliers, customers, orders, line
    // items) is endogenous.
    let corpus = tpch_like(&DatasetSpec::default());
    let stats = corpus.stats();
    println!(
        "TPC-H-like corpus: {} queries, {} answer lineages, up to {} variables / {} clauses",
        stats.num_queries, stats.num_lineages, stats.max_vars, stats.max_clauses
    );

    // Focus on the per-nation trade query (the corpus's tpch_q1) and pick its
    // largest answer lineage.
    let instance = corpus
        .instances_of("tpch_q1")
        .max_by_key(|i| i.lineage.size())
        .expect("corpus contains the trade query");
    println!(
        "\nauditing answer nation={} ({} supporting facts, {} join combinations)",
        instance.answer,
        instance.lineage.num_vars(),
        instance.lineage.num_clauses()
    );

    // Anytime approximation: certified intervals at ε = 0.1 within a budget.
    let budgeted = EngineConfig::new(Algorithm::AdaBan)
        .with_epsilon_str("0.1")
        .with_timeout(Duration::from_secs(5));
    match Engine::new(budgeted.clone()).session().attribute(&instance.lineage) {
        Ok(attribution) => {
            println!("\ntop 10 facts by approximate Banzhaf value (ε = 0.1):");
            for (var, score) in attribution.top_k(10) {
                let Score::Interval(interval) = score else { continue };
                println!("  fact f{:<4} Banzhaf ∈ [{}, {}]", var.0, interval.lower, interval.upper);
            }
        }
        Err(Interrupted) => {
            println!("approximation did not finish within the 5s budget");
        }
    }

    // Certified top-3 facts (interval separation, no ε), under a budget.
    let certain = budgeted.clone().with_algorithm(Algorithm::IchiBan).certain();
    match Engine::new(certain).session().top_k(&instance.lineage, 3) {
        Ok(topk) => {
            println!(
                "\ncertified top-3 facts: {:?} (certified = {})",
                topk.order.iter().map(|v| format!("f{}", v.0)).collect::<Vec<_>>(),
                topk.certified
            );
        }
        Err(Interrupted) => {
            println!("\ncertified top-3 needs more than the 5s budget; falling back to ε-relaxed");
            let relaxed = budgeted.with_algorithm(Algorithm::IchiBan);
            if let Ok(topk) = Engine::new(relaxed).session().top_k(&instance.lineage, 3) {
                println!(
                    "ε-relaxed top-3 facts: {:?}",
                    topk.order.iter().map(|v| format!("f{}", v.0)).collect::<Vec<_>>()
                );
            }
        }
    }

    // Compare against the cheap CNF-proxy heuristic ranking.
    let proxy = Engine::new(EngineConfig::new(Algorithm::CnfProxy))
        .session()
        .attribute(&instance.lineage)
        .expect("the proxy is linear time");
    println!(
        "\nCNF-proxy top-3 (no guarantees): {:?}",
        proxy.top_k(3).iter().map(|(v, _)| format!("f{}", v.0)).collect::<Vec<_>>()
    );
}
