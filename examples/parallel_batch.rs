//! Batch-parallel attribution: the `threads` knob, deterministic fan-out,
//! and cooperative interruption under one shared budget.
//!
//! Builds a small corpus of Shannon-expansion-hard ring lineages and
//! attributes it through `Session::attribute_batch` sequentially and with
//! four workers — the per-fact scores are bit-identical (parallelism is
//! unobservable in results), only the wall clock changes. A second batch
//! runs under one shared `Budget` that every worker charges, showing how a
//! timed-out batch degrades: finished instances keep their attributions,
//! unfinished ones report `Interrupted`.
//!
//! Run with `cargo run --release --example parallel_batch`.

use banzhaf_repro::prelude::*;
use std::time::Instant;

/// A ring lineage `x_o∧x_{o+1} ∨ … ∨ x_{o+n-1}∧x_o`: connected, no common
/// variable, so compilation must Shannon-expand — real per-instance work.
fn ring(offset: u32, len: u32) -> Dnf {
    Dnf::from_clauses(
        (0..len).map(|i| vec![Var(offset + i), Var(offset + (i + 1) % len)]).collect::<Vec<_>>(),
    )
}

fn main() {
    const RING_VARS: u32 = 24;
    let corpus: Vec<Dnf> = (0..8).map(|i| ring(i * (RING_VARS + 1), RING_VARS)).collect();
    let refs: Vec<&Dnf> = corpus.iter().collect();

    // 1. The same batch, sequential vs four workers. The cache is off so
    //    every instance pays one full compilation.
    let mut timings = Vec::new();
    let mut baseline: Option<Vec<_>> = None;
    for threads in [1usize, 4] {
        let engine = Engine::new(
            EngineConfig::new(Algorithm::ExaBan)
                .with_cache_config(CacheConfig::disabled())
                .with_threads(threads),
        );
        let mut session = engine.session();
        let start = Instant::now();
        let results = session.attribute_batch(&refs, BatchOptions::default());
        let elapsed = start.elapsed();
        let values: Vec<_> = results
            .into_iter()
            .map(|r| r.expect("unbounded budget").exact_values().expect("ExaBan is exact"))
            .collect();
        println!("threads={threads}: attributed {} lineages in {elapsed:?}", refs.len());
        match &baseline {
            None => baseline = Some(values),
            Some(reference) => {
                assert_eq!(reference, &values, "thread count must not change scores");
                println!("  per-fact scores bit-identical to the sequential run ✓");
            }
        }
        timings.push(elapsed);
    }

    // 2. One shared budget across all workers: a cap charged globally, so
    //    the whole batch is interrupted cooperatively once it is spent.
    let engine = Engine::new(
        EngineConfig::new(Algorithm::ExaBan)
            .with_cache_config(CacheConfig::disabled())
            .with_threads(4),
    );
    let mut session = engine.session();
    // Roughly enough steps for half the corpus.
    let shared = Budget::with_max_steps(4 * 1200);
    let outcomes = session.attribute_batch(&refs, BatchOptions::new().with_shared_budget(&shared));
    let finished = outcomes.iter().filter(|r| r.is_ok()).count();
    println!(
        "\nshared budget ({} steps): {finished}/{} instances finished, {} interrupted",
        shared.steps_used(),
        refs.len(),
        refs.len() - finished,
    );
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Ok(att) => println!(
                "  lineage {i}: #φ = {}",
                att.model_count.as_ref().expect("ExaBan reports the model count")
            ),
            Err(Interrupted) => println!("  lineage {i}: interrupted"),
        }
    }
}
