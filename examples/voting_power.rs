//! The Banzhaf value as voting power: the classic weighted-voting example.
//!
//! The Banzhaf value originates in the analysis of voting power (Penrose 1946,
//! Banzhaf 1965) — the paper's introduction cites its use for the Council of
//! the EU. This example feeds the engine a Boolean function directly (no
//! database): a weighted voting game is encoded as a positive DNF whose
//! clauses are the minimal winning coalitions, and the Banzhaf/Shapley values
//! of the voters come out of one exact attribution pass.
//!
//! Run with `cargo run --example voting_power`.

use banzhaf_repro::prelude::*;

/// Enumerates the minimal winning coalitions of a weighted voting game.
fn minimal_winning_coalitions(weights: &[u64], quota: u64) -> Vec<Vec<Var>> {
    let n = weights.len();
    let mut winning: Vec<Vec<Var>> = Vec::new();
    for mask in 1u64..(1 << n) {
        let total: u64 = (0..n).filter(|i| mask & (1 << i) != 0).map(|i| weights[i]).sum();
        if total < quota {
            continue;
        }
        // Minimal: removing any single member drops below the quota.
        let minimal = (0..n).filter(|i| mask & (1 << i) != 0).all(|i| total - weights[i] < quota);
        if minimal {
            winning.push((0..n).filter(|i| mask & (1 << i) != 0).map(|i| Var(i as u32)).collect());
        }
    }
    winning
}

fn main() {
    // A council with one large member, two medium members and three small
    // members; motions pass with 8 of 12 votes.
    let members = ["Alba", "Brivia", "Cadria", "Dole", "Elm", "Faro"];
    let weights = [5u64, 3, 3, 1, 1, 1];
    let quota = 8u64;

    let coalitions = minimal_winning_coalitions(&weights, quota);
    println!("quota {quota} of {} total votes", weights.iter().sum::<u64>());
    println!("{} minimal winning coalitions", coalitions.len());

    // The game as a positive DNF: one clause per minimal winning coalition.
    // One exact engine pass yields Banzhaf and Shapley on the same d-tree.
    let game = Dnf::from_clauses(coalitions);
    let engine = Engine::new(EngineConfig::new(Algorithm::ExaBan).with_shapley(true));
    let attribution = engine.session().attribute(&game).expect("unbounded budget");
    let banzhaf = attribution.exact_values().expect("ExaBan is exact");
    let shapley = attribution.shapley.as_ref().expect("Shapley requested");
    let power = normalized_power(&banzhaf, game.num_vars());
    let index = normalized_index(&banzhaf);

    println!(
        "\n{:<8} {:>6} {:>10} {:>16} {:>16} {:>10}",
        "member", "votes", "Banzhaf", "Penrose power", "Banzhaf index", "Shapley"
    );
    for (i, name) in members.iter().enumerate() {
        let v = Var(i as u32);
        println!(
            "{:<8} {:>6} {:>10} {:>16.4} {:>16.4} {:>10.4}",
            name,
            weights[i],
            banzhaf.get(&v).map(ToString::to_string).unwrap_or_else(|| "0".into()),
            power.get(&v).copied().unwrap_or(0.0),
            index.get(&v).copied().unwrap_or(0.0),
            shapley.get(&v).map(ShapleyValue::to_f64).unwrap_or(0.0),
        );
    }
    println!(
        "\nNote how voting weight and voting power diverge: members with equal \
         weight always get equal power, but doubling weight does not double power."
    );
}
