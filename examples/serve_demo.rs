//! The async serving layer end to end: two concurrent client sessions drive
//! attribution traffic through one `AttributionService` — bounded queue with
//! typed backpressure, per-request deadlines, cooperative cancellation, and
//! the engine's shared cross-session cache turning repeated lineage shapes
//! into hits.
//!
//! Run with `cargo run --release --example serve_demo`. CI runs it as a smoke
//! test; the final assertions are the acceptance conditions.

use banzhaf_repro::prelude::*;
use std::time::Duration;

/// A ring lineage: connected, no common variable, so attribution needs real
/// Shannon-expansion work.
fn ring(offset: u32, len: u32) -> Dnf {
    Dnf::from_clauses(
        (0..len).map(|i| vec![Var(offset + i), Var(offset + (i + 1) % len)]).collect::<Vec<_>>(),
    )
}

fn main() {
    // A small live database rides along: updates submitted to the service
    // are serialized against attribution traffic and maintain the
    // registered query's attribution incrementally.
    let mut db = Database::new();
    db.add_relation("R", 1);
    db.add_relation("S", 2);
    for i in 0..3 {
        db.insert_endogenous("R", vec![i.into()]).unwrap();
    }
    db.insert_endogenous("S", vec![0.into(), 0.into()]).unwrap();
    let query = parse_program("Q(X) :- R(X), S(X, Y).").unwrap();

    let service = AttributionService::start(
        ServeConfig::new(EngineConfig::new(Algorithm::ExaBan))
            .with_workers(2)
            .with_queue_capacity(16)
            .with_default_timeout(Duration::from_secs(10))
            .with_live_database(db)
            .with_live_query("q", query),
    );

    // Two concurrent client sessions, each submitting isomorphic rings with
    // disjoint variable ids: only canonical-lineage keying makes them equal,
    // and whichever client compiles a shape first serves the other's hits.
    std::thread::scope(|scope| {
        for client in 0..2u32 {
            let service = &service;
            scope.spawn(move || {
                let mut answered = 0;
                for i in 0..8u32 {
                    let lineage = ring(client * 10_000 + i * 100, 14 + 2 * (i % 3));
                    // Backpressure loop: a full queue is a typed rejection,
                    // and the client decides to retry.
                    let ticket = loop {
                        match service.submit(lineage.clone(), RequestOptions::default()) {
                            Ok(ticket) => break ticket,
                            Err(Rejected::QueueFull { .. }) => std::thread::yield_now(),
                            Err(rejected) => panic!("service closed mid-demo: {rejected:?}"),
                        }
                    };
                    let attribution = ticket.wait().expect("ample deadline");
                    answered += 1;
                    assert!(attribution.is_exact());
                }
                println!("client {client}: {answered} attributions answered");
            });
        }
    });

    // Cancellation: an expensive request is interrupted mid-compile without
    // disturbing the service.
    let doomed =
        service.submit(ring(500_000, 40), RequestOptions::default()).expect("queue has room");
    doomed.cancel();
    assert_eq!(doomed.wait().unwrap_err(), ServeError::Cancelled);

    // A hopeless deadline is a typed interruption, not a hang.
    let starved = service
        .submit(ring(600_000, 24), RequestOptions::new().with_timeout(Duration::ZERO))
        .expect("queue has room");
    assert_eq!(starved.wait().unwrap_err(), ServeError::Interrupted);

    // Live updates through the same queue: inserting S(1,9) re-derives only
    // the answer Q(1) whose lineage mentions the new fact; deleting it
    // removes the answer again. Tickets resolve to per-update reports.
    let inserted = service
        .submit_update(Update::insert("S", vec![1.into(), 9.into()]), RequestOptions::default())
        .expect("live service")
        .wait()
        .expect("valid update");
    println!(
        "update {}: {} answer(s) touched, {} untouched, {} compile steps",
        inserted.update,
        inserted.touched.len(),
        inserted.untouched,
        inserted.compile_steps
    );
    assert_eq!(service.live_attribution("q").expect("registered").answers.len(), 2);
    let removed = service
        .submit_update(Update::delete("S", vec![1.into(), 9.into()]), RequestOptions::default())
        .expect("live service")
        .wait()
        .expect("valid update");
    assert_eq!(removed.touched.len(), 1);
    assert_eq!(service.live_attribution("q").expect("registered").answers.len(), 1);

    let stats = service.stats();
    let cache = service.engine_stats().cache;
    println!(
        "service: {} submitted, {} completed, {} failed (cancelled/expired), {} rejected",
        stats.submitted, stats.completed, stats.failed, stats.rejected
    );
    println!(
        "shared cache: {} hits / {} misses ({:.0}% hit rate), {} insertions, {} evictions",
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
        cache.insertions,
        cache.evictions
    );

    // Acceptance: both clients were served, the shared cache produced hits
    // across sessions, and every completed result was exact.
    assert_eq!(stats.completed, 18, "both client sessions fully served, plus the two updates");
    assert!(cache.hits > 0, "cross-session cache hits expected");
    assert!(cache.hits >= 10, "3 distinct shapes x 16 requests leave >= 10 hits");
    service.shutdown();
    println!("serve_demo: OK");
}
