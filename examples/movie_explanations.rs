//! Explaining query answers over a movie database (IMDB-like scenario).
//!
//! The motivating use case of the paper: an analyst asks which directors
//! collaborate with which actors, and for one particular answer wants to know
//! *which facts of the database contribute most* to that answer — e.g. which
//! casting records are the most influential, so that a data-quality effort can
//! prioritise verifying them. One engine session explains every answer, with
//! Banzhaf and Shapley values computed on the same compiled d-tree.
//!
//! Run with `cargo run --example movie_explanations`.

use banzhaf_repro::prelude::*;

fn main() {
    // A small movie database: popular movie 0 has a large cast, movie 1 a
    // small one. Genre is reference data we take for granted (exogenous).
    let mut db = Database::new();
    db.add_relation("Movie", 2); // (mid, year)
    db.add_relation("ActsIn", 2); // (aid, mid)
    db.add_relation("Directs", 2); // (did, mid)
    db.add_relation("Genre", 2); // (mid, genre)

    for (mid, year) in [(0, 2015), (1, 2020), (2, 1998)] {
        db.insert_endogenous("Movie", vec![mid.into(), year.into()]).unwrap();
        db.insert_exogenous("Genre", vec![mid.into(), (mid % 2).into()]).unwrap();
    }
    // Director 7 directs movies 0 and 1; director 8 directs movie 2.
    db.insert_endogenous("Directs", vec![7.into(), 0.into()]).unwrap();
    db.insert_endogenous("Directs", vec![7.into(), 1.into()]).unwrap();
    db.insert_endogenous("Directs", vec![8.into(), 2.into()]).unwrap();
    // Casting: actor 100 appears in all three movies, the others in one each.
    for (aid, mid) in [(100, 0), (100, 1), (100, 2), (101, 0), (102, 0), (103, 1), (104, 2)] {
        db.insert_endogenous("ActsIn", vec![aid.into(), mid.into()]).unwrap();
    }

    // Which directors work with actor 100 on a post-2000 movie?
    let query =
        parse_program("Q(D) :- Directs(D, M), ActsIn(100, M), Movie(M, Y), Y >= 2000.").unwrap();
    println!("query:\n{query}");

    // One session explains all answers: exact Banzhaf plus Shapley values,
    // sharing the d-tree cache across answers with isomorphic lineage.
    let engine = Engine::new(EngineConfig::new(Algorithm::ExaBan).with_shapley(true));
    let mut session = engine.session();
    let explained = session.explain(&query, &db);

    for answer in &explained.answers {
        let director = &answer.tuple[0];
        println!("answer: director {director}");
        println!("  lineage: {}", answer.lineage);

        // Exact contributions of every supporting fact.
        let attribution = answer.attribution().expect("unlimited budget");
        let shapley = attribution.shapley.as_ref().expect("Shapley requested");
        println!("  contributions (Banzhaf | Shapley):");
        for (var, score) in attribution.ranking() {
            let fact = db.fact(FactId(var.0)).unwrap();
            println!(
                "    {fact:<24} {:>4}  |  {:.4}",
                score.exact().unwrap(),
                shapley[&var].to_f64()
            );
        }

        // The single most influential fact, certified without exact values.
        let mut ichiban = Engine::new(EngineConfig::new(Algorithm::IchiBan).certain()).session();
        let top = ichiban.top_k(&answer.lineage, 1).unwrap();
        let top_fact = db.fact(FactId(top.order[0].0)).unwrap();
        println!("  most influential fact (IchiBan top-1): {top_fact}\n");
    }
}
