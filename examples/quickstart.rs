//! Quickstart: from a database and a query to ranked fact contributions.
//!
//! Reproduces the running example of the paper (Examples 5–7): the query
//! `Q() :- R(X,Y,Z), S(X,Y,V), T(X,U)` over a four-fact database, computing
//! exact Banzhaf values with ExaBan, an ε-approximation with AdaBan, and the
//! top facts with IchiBan.
//!
//! Run with `cargo run --example quickstart`.

use banzhaf_repro::prelude::*;

fn main() {
    // 1. Build the database of Example 6 (all facts endogenous).
    let mut db = Database::new();
    db.add_relation("R", 3);
    db.add_relation("S", 3);
    db.add_relation("T", 2);
    db.insert_endogenous("R", vec![1.into(), 2.into(), 3.into()]).unwrap();
    db.insert_endogenous("S", vec![1.into(), 2.into(), 4.into()]).unwrap();
    db.insert_endogenous("S", vec![1.into(), 2.into(), 5.into()]).unwrap();
    db.insert_endogenous("T", vec![1.into(), 6.into()]).unwrap();

    // 2. Parse and analyse the query.
    let query = parse_program("Q() :- R(X, Y, Z), S(X, Y, V), T(X, U).").unwrap();
    let cq = &query.disjuncts[0];
    println!("query: {cq}");
    println!("  hierarchical:   {}", is_hierarchical(cq));
    println!("  self-join free: {}", is_self_join_free(cq));

    // 3. Evaluate with provenance: the lineage of the (Boolean) answer.
    let result = evaluate(&query, &db);
    let lineage = result.answers()[0].lineage.clone();
    println!("\nlineage: {lineage}");

    // 4. Compile the lineage into a d-tree and run ExaBan.
    let tree =
        DTree::compile_full(lineage.clone(), PivotHeuristic::MostFrequent, &Budget::unlimited())
            .expect("unbounded budget cannot be interrupted");
    println!("\nd-tree:\n{}", tree.render());
    let exact = exaban_all(&tree);
    println!("model count #φ = {}", exact.model_count);
    println!("\nexact Banzhaf values (ExaBan):");
    for (var, value) in exact.ranking() {
        let fact = db.fact(FactId(var.0)).expect("lineage variables map to facts");
        println!("  Banzhaf({fact}) = {value}");
    }

    // 5. Anytime approximation with AdaBan at relative error 0.1.
    let mut partial = DTree::from_leaf(lineage.clone());
    let vars: Vec<Var> = lineage.universe().iter().collect();
    let intervals = adaban_all(
        &mut partial,
        &vars,
        &AdaBanOptions::with_epsilon_str("0.1"),
        &Budget::unlimited(),
    )
    .unwrap();
    println!("\nAdaBan (ε = 0.1) certified intervals:");
    for (var, interval) in intervals {
        let fact = db.fact(FactId(var.0)).unwrap();
        println!("  Banzhaf({fact}) ∈ [{}, {}]", interval.lower, interval.upper);
    }

    // 6. Top-2 facts with IchiBan (certain mode).
    let mut topk_tree = DTree::from_leaf(lineage);
    let topk =
        ichiban_topk(&mut topk_tree, 2, &IchiBanOptions::certain(), &Budget::unlimited()).unwrap();
    println!("\nIchiBan certified top-2 facts:");
    for var in topk.members {
        println!("  {}", db.fact(FactId(var.0)).unwrap());
    }
}
