//! Quickstart: from a database and a query to ranked fact contributions.
//!
//! Reproduces the running example of the paper (Examples 5–7): the query
//! `Q() :- R(X,Y,Z), S(X,Y,V), T(X,U)` over a four-fact database — exact
//! Banzhaf values with ExaBan, an ε-approximation with AdaBan, and the top
//! facts with IchiBan, all dispatched through the `banzhaf-engine` front
//! door.
//!
//! Run with `cargo run --example quickstart`.

use banzhaf_repro::prelude::*;

fn main() {
    // 1. Build the database of Example 6 (all facts endogenous).
    let mut db = Database::new();
    db.add_relation("R", 3);
    db.add_relation("S", 3);
    db.add_relation("T", 2);
    db.insert_endogenous("R", vec![1.into(), 2.into(), 3.into()]).unwrap();
    db.insert_endogenous("S", vec![1.into(), 2.into(), 4.into()]).unwrap();
    db.insert_endogenous("S", vec![1.into(), 2.into(), 5.into()]).unwrap();
    db.insert_endogenous("T", vec![1.into(), 6.into()]).unwrap();

    // 2. Parse and analyse the query.
    let query = parse_program("Q() :- R(X, Y, Z), S(X, Y, V), T(X, U).").unwrap();
    let cq = &query.disjuncts[0];
    println!("query: {cq}");
    println!("  hierarchical:   {}", is_hierarchical(cq));
    println!("  self-join free: {}", is_self_join_free(cq));

    // 3. Explain the query through the engine: evaluation, per-answer
    //    lineage, and exact attribution in one call.
    let engine = Engine::new(EngineConfig::new(Algorithm::ExaBan));
    let explained = engine.session().explain(&query, &db);
    let answer = &explained.answers[0];
    println!("\nlineage: {}", answer.lineage);
    let exact = answer.attribution().expect("unlimited budget");
    println!("model count #φ = {}", exact.model_count.as_ref().unwrap());
    println!(
        "({} compile steps, {}-node d-tree)",
        exact.stats.compile_steps, exact.stats.dtree_nodes
    );
    println!("\nexact Banzhaf values (ExaBan):");
    for (var, score) in exact.ranking() {
        let fact = db.fact(FactId(var.0)).expect("lineage variables map to facts");
        println!("  Banzhaf({fact}) = {}", score.exact().unwrap());
    }

    // 4. Anytime approximation: the same pipeline with AdaBan at ε = 0.1.
    let adaban = Engine::new(EngineConfig::new(Algorithm::AdaBan).with_epsilon_str("0.1"));
    let intervals = adaban.session().attribute(&answer.lineage).unwrap();
    println!("\nAdaBan (ε = 0.1) certified intervals:");
    for (var, score) in intervals.ranking() {
        let Score::Interval(interval) = score else { continue };
        let fact = db.fact(FactId(var.0)).unwrap();
        println!("  Banzhaf({fact}) ∈ [{}, {}]", interval.lower, interval.upper);
    }

    // 5. Top-2 facts with IchiBan (certain mode: no ε, certified selection).
    let ichiban = Engine::new(EngineConfig::new(Algorithm::IchiBan).certain());
    let top2 = ichiban.session().top_k(&answer.lineage, 2).unwrap();
    println!("\nIchiBan certified top-2 facts (certified = {}):", top2.certified);
    for var in top2.order {
        println!("  {}", db.fact(FactId(var.0)).unwrap());
    }

    // 6. Keep the attribution live under updates: deleting T(1,6) kills the
    //    only answer; re-inserting it brings the answer back, re-deriving
    //    only the answers whose lineage mentions the touched fact.
    let mut live = engine.live_session(db);
    live.register("q", query);
    for update in [
        Update::delete("T", vec![1.into(), 6.into()]),
        Update::insert("T", vec![1.into(), 6.into()]),
    ] {
        let report = live.apply_update(update).unwrap();
        println!(
            "\napplied {}: {} answer(s) touched, {} untouched, {} compile steps",
            report.update,
            report.touched.len(),
            report.untouched,
            report.compile_steps
        );
    }
    let maintained = live.attribution("q").expect("registered");
    println!("maintained answers after the update stream: {}", maintained.answers.len());
}
