//! Cross-crate property-based tests: on randomly generated lineages, all
//! algorithm layers must agree with the brute-force ground truth and with each
//! other, and the approximation algorithms must honour their guarantees.

use banzhaf_repro::prelude::*;
use proptest::prelude::*;

/// Strategy generating small random positive DNFs (as clause lists) so that
/// brute-force verification stays feasible.
fn small_dnf() -> impl Strategy<Value = Dnf> {
    // Between 1 and 8 clauses, each with 1..=3 variables drawn from 8.
    proptest::collection::vec(proptest::collection::vec(0u32..8, 1..=3), 1..=8).prop_map(
        |clauses| {
            Dnf::from_clauses(
                clauses.into_iter().map(|c| c.into_iter().map(Var).collect::<Vec<_>>()),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ExaBan on a compiled d-tree equals brute force for all variables, and
    /// the model count matches; both Shannon pivot heuristics agree.
    #[test]
    fn exaban_matches_brute_force(phi in small_dnf()) {
        for heuristic in [PivotHeuristic::MostFrequent, PivotHeuristic::FirstVariable] {
            let tree = DTree::compile_full(phi.clone(), heuristic, &Budget::unlimited()).unwrap();
            let result = exaban_all(&tree);
            prop_assert_eq!(result.model_count.clone(), phi.brute_force_model_count());
            for x in phi.universe().iter() {
                let expected = phi.brute_force_banzhaf(x);
                prop_assert_eq!(Int::from(result.value(x).unwrap().clone()), expected.clone());
                let (single, _) = exaban_single(&tree, x);
                prop_assert_eq!(single, expected);
            }
        }
    }

    /// The Sig22 baseline (CNF + DPLL compiler) agrees with ExaBan.
    #[test]
    fn sig22_agrees_with_exaban(phi in small_dnf()) {
        let tree = DTree::compile_full(phi.clone(), PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
        let exact = exaban_all(&tree);
        let sig = sig22_exact(&phi, &Budget::unlimited()).unwrap();
        prop_assert_eq!(&exact.model_count, &sig.model_count);
        for x in phi.universe().iter() {
            prop_assert_eq!(exact.value(x), sig.value(x));
        }
    }

    /// Bounds on any partial d-tree bracket the exact Banzhaf value and model
    /// count, after every single expansion step.
    #[test]
    fn bounds_always_bracket_exact_values(phi in small_dnf(), opt4 in any::<bool>()) {
        let exact_count = phi.brute_force_model_count();
        let mut tree = DTree::from_leaf(phi.clone());
        loop {
            for x in phi.universe().iter() {
                let quad = bounds_for_var(&tree, x, opt4);
                let exact = phi.brute_force_banzhaf(x);
                prop_assert!(quad.banzhaf_lower <= exact);
                prop_assert!(exact <= quad.banzhaf_upper);
                prop_assert!(quad.count_lower <= exact_count);
                prop_assert!(exact_count <= quad.count_upper);
            }
            if !tree.expand_largest_leaf(PivotHeuristic::MostFrequent) {
                break;
            }
        }
    }

    /// AdaBan returns an interval containing the exact value and satisfying
    /// the requested relative error, for several ε.
    #[test]
    fn adaban_interval_is_sound_and_tight_enough(phi in small_dnf(), eps_idx in 0usize..4) {
        let eps_str = ["0", "0.1", "0.3", "1"][eps_idx];
        let options = AdaBanOptions::with_epsilon_str(eps_str);
        let eps = Ratio::from_decimal_str(eps_str).unwrap();
        let mut tree = DTree::from_leaf(phi.clone());
        for x in phi.universe().iter() {
            let interval = adaban(&mut tree, x, &options, &Budget::unlimited()).unwrap();
            let exact = phi.brute_force_banzhaf(x);
            prop_assert!(Int::from(interval.lower.clone()) <= exact);
            prop_assert!(exact <= Int::from(interval.upper.clone()));
            prop_assert!(interval.meets_epsilon(&eps));
        }
    }

    /// IchiBan's certain top-k contains only variables whose exact value is at
    /// least the k-th largest exact value (i.e. it is a valid top-k set under
    /// ties), and certified rankings are consistent with the exact values.
    #[test]
    fn ichiban_topk_is_exact(phi in small_dnf(), k in 1usize..5) {
        let mut exact: Vec<(Var, Int)> = phi.brute_force_all_banzhaf();
        exact.sort_by(|(va, ba), (vb, bb)| bb.cmp(ba).then(va.cmp(vb)));
        let k = k.min(exact.len());
        let threshold = exact[k - 1].1.clone();

        let mut tree = DTree::from_leaf(phi.clone());
        let topk = ichiban_topk(&mut tree, k, &IchiBanOptions::certain(), &Budget::unlimited()).unwrap();
        prop_assert_eq!(topk.members.len(), k);
        let exact_of = |v: Var| exact.iter().find(|(u, _)| *u == v).unwrap().1.clone();
        for member in &topk.members {
            prop_assert!(exact_of(*member) >= threshold.clone());
        }

        let mut tree = DTree::from_leaf(phi.clone());
        let ranking = ichiban_rank(&mut tree, &IchiBanOptions::certain(), &Budget::unlimited()).unwrap();
        prop_assert!(ranking.certified);
        let values: Vec<Int> = ranking.order.iter().map(|v| exact_of(*v)).collect();
        for w in values.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    /// Shapley values from the d-tree satisfy the efficiency axiom and the
    /// per-size critical counts sum to the Banzhaf values.
    #[test]
    fn shapley_and_critical_counts_are_consistent(phi in small_dnf()) {
        let tree = DTree::compile_full(phi.clone(), PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
        let banzhaf = exaban_all(&tree);
        let critical = critical_counts_all(&tree);
        for x in phi.universe().iter() {
            let mut total = Natural::zero();
            for c in &critical[&x] {
                total += c;
            }
            prop_assert_eq!(&total, banzhaf.value(x).unwrap());
        }
        let shapley = shapley_all(&tree);
        let sum: f64 = shapley.values().map(ShapleyValue::to_f64).sum();
        let satisfied_by_all = !phi.is_false();
        let satisfied_by_none = phi.evaluate(&Assignment::empty());
        let expected = (satisfied_by_all as i32 - satisfied_by_none as i32) as f64;
        prop_assert!((sum - expected).abs() < 1e-6);
    }

    /// The lineage produced by the provenance-aware evaluator for a
    /// single-atom query has one clause per endogenous matching fact.
    #[test]
    fn single_atom_query_lineage(count in 1usize..8) {
        let mut db = Database::new();
        db.add_relation("R", 1);
        for i in 0..count {
            db.insert_endogenous("R", vec![(i as i64).into()]).unwrap();
        }
        let query = parse_program("Q() :- R(X).").unwrap();
        let result = evaluate(&query, &db);
        prop_assert_eq!(result.answers().len(), 1);
        let lineage = &result.answers()[0].lineage;
        prop_assert_eq!(lineage.num_clauses(), count);
        let tree = DTree::compile_full(lineage.clone(), PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
        let values = exaban_all(&tree);
        // Every fact is symmetric: Banzhaf value 1 (pivotal only when all
        // others are absent).
        for v in lineage.universe().iter() {
            prop_assert_eq!(values.value(v).unwrap().to_u64(), Some(1));
        }
    }
}
