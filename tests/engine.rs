//! Engine-level integration tests: every `Attributor` implementation against
//! the ExaBan ground truth on random lineages, and the d-tree cache against
//! uncached runs.

use banzhaf_repro::prelude::*;
use proptest::prelude::*;

/// Strategy generating small random positive DNFs so that the exact ground
/// truth stays cheap to compute.
fn small_dnf() -> impl Strategy<Value = Dnf> {
    proptest::collection::vec(proptest::collection::vec(0u32..8, 1..=3), 1..=8).prop_map(
        |clauses| {
            Dnf::from_clauses(
                clauses.into_iter().map(|c| c.into_iter().map(Var).collect::<Vec<_>>()),
            )
        },
    )
}

/// Ground truth via the core two-pass algorithm on a compiled d-tree.
fn ground_truth(phi: &Dnf) -> BanzhafResult {
    let tree = DTree::compile_full(phi.clone(), PivotHeuristic::MostFrequent, &Budget::unlimited())
        .unwrap();
    exaban_all(&tree)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact backends agree with `exaban_all` on every value and on the model
    /// count; interval backends bracket every exact value.
    #[test]
    fn every_attributor_agrees_with_or_brackets_exaban(phi in small_dnf()) {
        let truth = ground_truth(&phi);
        for algorithm in [Algorithm::ExaBan, Algorithm::Sig22] {
            let attributor = EngineConfig::new(algorithm).attributor();
            let att = attributor.attribute(&phi, &Budget::unlimited()).unwrap();
            prop_assert_eq!(att.model_count.as_ref().unwrap(), &truth.model_count);
            let exact = att.exact_values().unwrap();
            for x in phi.universe().iter() {
                prop_assert_eq!(&exact[&x], truth.value(x).unwrap(), "{} {}", algorithm, x);
            }
        }
        for algorithm in [Algorithm::AdaBan, Algorithm::IchiBan] {
            let attributor = EngineConfig::new(algorithm).attributor();
            let att = attributor.attribute(&phi, &Budget::unlimited()).unwrap();
            for x in phi.universe().iter() {
                let Some(Score::Interval(interval)) = att.value(x) else {
                    prop_assert!(false, "{} must return an interval for {}", algorithm, x);
                    unreachable!();
                };
                let exact = truth.value(x).unwrap();
                prop_assert!(
                    &interval.lower <= exact && exact <= &interval.upper,
                    "{} {}: [{}, {}] must contain {}",
                    algorithm, x, interval.lower, interval.upper, exact
                );
            }
        }
    }

    /// The session's canonical-lineage d-tree cache returns exactly the same
    /// results as an uncached session, for exact and estimate backends alike.
    #[test]
    fn cached_sessions_match_uncached_sessions(phi in small_dnf()) {
        // Attribute the lineage and a renamed copy: the copy hits the cache.
        let shifted = Dnf::from_clauses(
            phi.clauses().iter().map(|c| c.iter().map(|v| Var(v.0 + 100)).collect::<Vec<_>>()),
        );
        for algorithm in [Algorithm::ExaBan, Algorithm::Sig22] {
            let config = EngineConfig::new(algorithm);
            let mut cached = Engine::new(config.clone().with_cache_config(CacheConfig::new())).session();
            let mut uncached = Engine::new(config.with_cache_config(CacheConfig::disabled())).session();
            for lineage in [&phi, &shifted] {
                let a = cached.attribute(lineage).unwrap();
                let b = uncached.attribute(lineage).unwrap();
                prop_assert_eq!(a.exact_values().unwrap(), b.exact_values().unwrap());
                prop_assert_eq!(a.model_count, b.model_count);
            }
            prop_assert_eq!(cached.stats().cache_hits, 1);
            prop_assert!(cached.stats().compile_steps <= uncached.stats().compile_steps);
        }
    }
}

/// Applies a random variable bijection (onto sparse, shuffled target ids) and
/// a random clause permutation to `phi`, returning the transformed lineage
/// and the bijection as `original -> renamed`.
fn random_isomorph(phi: &Dnf, seed: u64) -> (Dnf, std::collections::HashMap<Var, Var>) {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shuffle = |items: &mut Vec<u32>| {
        for i in (1..items.len()).rev() {
            let j = rng.gen_range(0..=i);
            items.swap(i, j);
        }
    };
    let originals: Vec<Var> = phi.universe().iter().collect();
    // Arbitrary targets: a shuffled, strided, offset id block — nothing the
    // first-occurrence walk could align with the original labels.
    let mut targets: Vec<u32> = (0..originals.len() as u32).collect();
    shuffle(&mut targets);
    let offset = rng.gen_range(0u32..40);
    let stride = rng.gen_range(1u32..4);
    let bijection: std::collections::HashMap<Var, Var> =
        originals.iter().zip(&targets).map(|(&v, &t)| (v, Var(offset + t * stride))).collect();
    let mut clauses: Vec<Vec<Var>> =
        phi.clauses().iter().map(|c| c.iter().map(|v| bijection[&v]).collect()).collect();
    // Permute the clause order too (the Dnf constructor re-sorts, but the
    // sort order itself depends on the renamed labels — exactly the
    // sensitivity that broke the old key).
    for i in (1..clauses.len()).rev() {
        let j = rng.gen_range(0..=i);
        clauses.swap(i, j);
    }
    (Dnf::from_clauses(clauses), bijection)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole's acceptance property: the canonical cache key is
    /// invariant under arbitrary variable bijections composed with clause
    /// permutations — the original and its random isomorph occupy **one**
    /// `SharedCache` entry, the second attribution scores a hit, and the
    /// values transfer through the bijection.
    #[test]
    fn isomorphic_lineages_occupy_one_cache_entry(phi in small_dnf(), seed in any::<u64>()) {
        let (renamed, bijection) = random_isomorph(&phi, seed);
        let engine = Engine::new(EngineConfig::default());
        let mut session = engine.session();
        let first = session.attribute(&phi).unwrap();
        let second = session.attribute(&renamed).unwrap();
        prop_assert!(!first.stats.cache_hit);
        prop_assert!(second.stats.cache_hit, "the isomorph must hit the first entry");
        let stats = engine.stats().cache;
        prop_assert_eq!(stats.insertions, 1, "one canonical shape, one entry");
        prop_assert_eq!(stats.hits, 1);
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.entries, 1);
        prop_assert!(stats.canon_steps > 0, "canonicalization cost must be observable");
        // The cached values transfer through the bijection.
        prop_assert_eq!(&first.model_count, &second.model_count);
        for x in phi.universe().iter() {
            prop_assert_eq!(
                first.value(x).unwrap().exact(),
                second.value(bijection[&x]).unwrap().exact(),
                "{} -> {}", x, bijection[&x]
            );
        }
    }
}

#[test]
fn engine_explains_workload_answers_like_the_raw_pipeline() {
    // The engine front door must agree with the hand-wired pipeline on a
    // sample of workload lineages.
    let corpus = academic_like(&DatasetSpec::default());
    let engine = Engine::new(EngineConfig::default());
    let mut session = engine.session();
    let mut checked = 0;
    for instance in &corpus.instances {
        if instance.lineage.num_vars() == 0 || instance.lineage.num_vars() > 14 {
            continue;
        }
        let truth = ground_truth(&instance.lineage);
        let att = session.attribute(&instance.lineage).unwrap();
        assert_eq!(att.model_count.as_ref(), Some(&truth.model_count));
        for x in instance.lineage.universe().iter() {
            assert_eq!(att.value(x).unwrap().exact().as_ref(), truth.value(x));
        }
        checked += 1;
        if checked >= 25 {
            break;
        }
    }
    assert!(checked >= 10, "expected enough small instances to check, got {checked}");
}

#[test]
fn session_cache_pays_off_on_a_corpus_with_repeated_lineages() {
    // The acceptance check of the engine refactor: on a corpus whose answers
    // share isomorphic lineage, the cached session performs strictly fewer
    // compile steps than the uncached one.
    let repeated: Vec<Dnf> = (0..8u32)
        .map(|s| {
            let o = s * 16;
            Dnf::from_clauses(vec![
                vec![Var(o), Var(o + 1)],
                vec![Var(o + 1), Var(o + 2)],
                vec![Var(o + 2), Var(o + 3)],
                vec![Var(o + 3), Var(o + 4)],
                vec![Var(o + 4), Var(o)],
            ])
        })
        .collect();
    let mut cached =
        Engine::new(EngineConfig::default().with_cache_config(CacheConfig::new())).session();
    let mut uncached =
        Engine::new(EngineConfig::default().with_cache_config(CacheConfig::disabled())).session();
    for lineage in &repeated {
        let a = cached.attribute(lineage).unwrap();
        let b = uncached.attribute(lineage).unwrap();
        assert_eq!(a.exact_values(), b.exact_values());
    }
    assert_eq!(cached.stats().cache_hits, 7);
    assert!(
        cached.stats().compile_steps < uncached.stats().compile_steps,
        "cache must save compile steps: {} vs {}",
        cached.stats().compile_steps,
        uncached.stats().compile_steps
    );
}

#[test]
fn engine_and_query_layer_compose_end_to_end() {
    // Examples 5–7 of the paper, through the front door only.
    let mut db = Database::new();
    db.add_relation("R", 3);
    db.add_relation("S", 3);
    db.add_relation("T", 2);
    let r = db.insert_endogenous("R", vec![1.into(), 2.into(), 3.into()]).unwrap();
    let s1 = db.insert_endogenous("S", vec![1.into(), 2.into(), 4.into()]).unwrap();
    db.insert_endogenous("S", vec![1.into(), 2.into(), 5.into()]).unwrap();
    let t = db.insert_endogenous("T", vec![1.into(), 6.into()]).unwrap();
    let query = parse_program("Q() :- R(X, Y, Z), S(X, Y, V), T(X, U).").unwrap();

    let engine = Engine::new(EngineConfig::default().with_shapley(true));
    let explained = engine.session().explain(&query, &db);
    assert_eq!(explained.answers.len(), 1);
    let attribution = explained.answers[0].attribution().expect("unlimited budget");
    assert_eq!(attribution.model_count.as_ref().unwrap().to_u64(), Some(3));
    let exact = attribution.exact_values().unwrap();
    assert_eq!(exact[&Var(r.0)].to_u64(), Some(3));
    assert_eq!(exact[&Var(s1.0)].to_u64(), Some(1));
    assert_eq!(exact[&Var(t.0)].to_u64(), Some(3));
    assert!(attribution.shapley.is_some());

    // The certified top-2 through the IchiBan backend.
    let mut topk_session = Engine::new(EngineConfig::new(Algorithm::IchiBan).certain()).session();
    let top2 = topk_session.top_k(&explained.answers[0].lineage, 2).unwrap();
    assert!(top2.certified);
    assert!(top2.order.contains(&Var(r.0)));
    assert!(top2.order.contains(&Var(t.0)));
}

/// The live-update schema shared by the incremental tests below: a unary
/// `R`, a binary `S`, and a join query over both.
fn live_db(initial: &[(bool, u8, u8)]) -> Database {
    let mut db = Database::new();
    db.add_relation("R", 1);
    db.add_relation("S", 2);
    db.add_relation("T", 1);
    for &(is_r, a, b) in initial {
        if is_r {
            db.insert_endogenous("R", vec![i64::from(a).into()]).unwrap();
        } else {
            db.insert_endogenous("S", vec![i64::from(a).into(), i64::from(b).into()]).unwrap();
        }
    }
    db
}

fn live_query() -> UnionQuery {
    parse_program("Q(X) :- R(X), S(X, Y).").unwrap()
}

/// Strategy generating initial facts as packed codes; bit 0 picks the
/// relation, bits 1.. pick the (small-domain) attribute values.
fn initial_facts() -> impl Strategy<Value = Vec<(bool, u8, u8)>> {
    proptest::collection::vec(0u32..32, 1..=9).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| (c & 1 == 1, ((c >> 1) & 3) as u8, ((c >> 3) & 3) as u8))
            .collect()
    })
}

/// Strategy generating an insert/delete stream as packed codes; bit 0 is
/// insert-vs-delete, bit 1 picks the relation.
fn update_stream() -> impl Strategy<Value = Vec<(bool, bool, u8, u8)>> {
    proptest::collection::vec(0u32..64, 1..=7).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| (c & 1 == 1, c & 2 == 2, ((c >> 2) & 3) as u8, ((c >> 4) & 3) as u8))
            .collect()
    })
}

/// Asserts that the live session's maintained snapshot for `name` is
/// bit-identical to a cold, cacheless, single-threaded re-evaluation of the
/// same query over the live session's current database.
fn assert_matches_cold(live: &LiveSession, name: &str, query: &UnionQuery) {
    let cold_engine = Engine::new(
        EngineConfig::new(Algorithm::ExaBan)
            .with_cache_config(CacheConfig::disabled())
            .with_threads(1),
    );
    let cold = cold_engine.session().explain(query, live.db());
    let snapshot = live.attribution(name).expect("query is registered");
    assert_eq!(snapshot.answers.len(), cold.answers.len());
    for (incremental, cold) in snapshot.answers.iter().zip(&cold.answers) {
        assert_eq!(&incremental.tuple, &cold.tuple);
        let a = incremental.attribution().expect("unlimited budget");
        let b = cold.attribution().expect("unlimited budget");
        assert_eq!(&a.model_count, &b.model_count);
        assert_eq!(a.exact_values().unwrap(), b.exact_values().unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole's acceptance property: a random insert/delete stream
    /// applied incrementally through [`LiveSession::apply_update`] is
    /// bit-identical to cold re-evaluating the registered query after every
    /// step — across cache on/off and 1/2 worker threads.
    #[test]
    fn incremental_updates_match_cold_reevaluation_after_every_step(
        initial in initial_facts(),
        stream in update_stream(),
    ) {
        let db = live_db(&initial);
        let query = live_query();
        for (cache, threads) in [(true, 1), (true, 2), (false, 1), (false, 2)] {
            let engine = Engine::new(
                EngineConfig::new(Algorithm::ExaBan).with_cache_config(CacheConfig::new().with_enabled(cache)).with_threads(threads),
            );
            let mut live = engine.live_session(db.clone());
            live.register("q", query.clone());
            assert_matches_cold(&live, "q", &query);
            for &(is_insert, is_r, a, b) in &stream {
                let values = if is_r {
                    vec![i64::from(a).into()]
                } else {
                    vec![i64::from(a).into(), i64::from(b).into()]
                };
                let relation = if is_r { "R" } else { "S" };
                let update = if is_insert {
                    Update::insert(relation, values)
                } else {
                    Update::delete(relation, values)
                };
                match live.apply_update(update) {
                    // A delete of an absent tuple is rejected without
                    // changing the database; anything else must hold the
                    // bit-identity invariant right away.
                    Err(_) => prop_assert!(!is_insert),
                    Ok(report) => {
                        // touched + untouched accounts for every answer:
                        // the ones still live after the update, plus the
                        // ones the update removed.
                        let removed = report
                            .touched
                            .iter()
                            .filter(|t| t.change == AnswerChange::Removed)
                            .count();
                        let after = live.attribution("q").expect("registered").answers.len();
                        prop_assert_eq!(
                            report.touched.len() + usize::try_from(report.untouched).unwrap(),
                            after + removed,
                        );
                    }
                }
                assert_matches_cold(&live, "q", &query);
            }
        }
    }
}

#[test]
fn update_touching_no_registered_answer_compiles_nothing() {
    // `T` exists in the schema but no registered query mentions it, and
    // `R(3)` joins with no `S(3, _)`: neither update can touch a registered
    // answer, so the delta path must not pay a single compile step.
    let mut db = live_db(&[(true, 1, 0), (false, 1, 2)]);
    db.insert_endogenous("T", vec![9.into()]).unwrap();
    let engine = Engine::new(EngineConfig::default());
    let mut live = engine.live_session(db);
    let registered = live.register("q", live_query());
    assert_eq!(registered.answers.len(), 1);

    for update in [
        Update::insert("T", vec![7.into()]),
        Update::insert("R", vec![3.into()]),
        Update::delete("T", vec![9.into()]),
    ] {
        let report = live.apply_update(update).unwrap();
        assert!(report.touched.is_empty(), "no registered answer mentions the fact");
        assert_eq!(report.compile_steps, 0, "untouched answers must not recompile");
        assert_eq!(report.untouched, 1);
    }
    // The maintained snapshot never moved.
    let snapshot = live.attribution("q").unwrap();
    assert_eq!(snapshot.answers.len(), 1);
    assert_eq!(snapshot.answers[0].tuple, vec![Value::from(1)]);
    assert_eq!(live.stats().update_compile_steps, 0);
}

/// Strategy generating a random small aggregate database as packed codes:
/// bits 0-1 pick the supplier, bits 2-3 the part, bits 4-6 the value, bit 7
/// endogenous-vs-exogenous. Sizes keep every per-answer lineage
/// brute-forceable (2^n worlds over n <= 8 variables).
fn aggregate_rows() -> impl Strategy<Value = Vec<(u8, u8, i8, bool)>> {
    proptest::collection::vec(0u32..256, 1..=7).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| {
                ((c & 3) as u8, ((c >> 2) & 3) as u8, (1 + ((c >> 4) & 7)) as i8, c & 128 == 128)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The aggregate generalization's acceptance property: for SUM and COUNT
    /// queries over random small databases, every per-fact value the engine
    /// returns equals the brute-force aggregate Banzhaf value (the signed
    /// sum of `val(Y + f) - val(Y)` over all `2^n` subsets of the other
    /// facts) — with the cache on and off, at 1 and 2 threads.
    #[test]
    fn aggregate_attributions_agree_with_brute_force(
        rows in aggregate_rows(),
        count in any::<bool>(),
        cache in any::<bool>(),
        two_threads in any::<bool>(),
    ) {
        let mut db = Database::new();
        db.add_relation("Supp", 1);
        db.add_relation("Item", 3);
        let mut seen_suppliers = std::collections::HashSet::new();
        let mut seen_items = std::collections::HashSet::new();
        for &(s, p, v, exo) in &rows {
            if seen_suppliers.insert(s) {
                db.insert_endogenous("Supp", vec![i64::from(s).into()]).unwrap();
            }
            if seen_items.insert((s, p)) {
                let row = vec![i64::from(s).into(), i64::from(p).into(), i64::from(v).into()];
                if exo {
                    db.insert_exogenous("Item", row).unwrap();
                } else {
                    db.insert_endogenous("Item", row).unwrap();
                }
            }
        }
        let program = if count {
            "Q(S, COUNT(*)) :- Supp(S), Item(S, P, V)."
        } else {
            "Q(S, SUM(V)) :- Supp(S), Item(S, P, V)."
        };
        let query = parse_program(program).unwrap();
        let result = evaluate_aggregate(&query, &db).unwrap();
        let config = EngineConfig::new(Algorithm::ExaBan)
            .with_cache_config(CacheConfig::new().with_enabled(cache))
            .with_threads(if two_threads { 2 } else { 1 });
        let mut session = Engine::new(config).session();
        for answer in result.answers() {
            let attribution = session.attribute_aggregate(&answer.lineage).unwrap();
            prop_assert_eq!(
                attribution.aggregate,
                Some(if count { AggregateKind::Count } else { AggregateKind::Sum })
            );
            for x in answer.lineage.universe().iter() {
                let Some(Score::Rational(got)) = attribution.value(x) else {
                    panic!("aggregate scores are exact rationals");
                };
                prop_assert_eq!(
                    got,
                    &answer.lineage.brute_force_aggregate_banzhaf(x),
                    "cache={} threads={} var={}", cache, two_threads, x
                );
            }
        }
    }
}

/// Weighted cache keying: lineages sharing one Boolean skeleton but
/// differing in clause weights (with no skeleton automorphism carrying one
/// weight placement to the other) or in aggregate kind occupy **separate**
/// cache entries, while a genuine weighted isomorph (renamed variables,
/// weights carried along) still hits.
#[test]
fn weighted_lineages_key_apart_by_weights_and_kind() {
    let path = |offset: u32, weights: [i64; 3], kind| {
        WeightedDnf::from_weighted_clauses(
            kind,
            vec![
                (vec![Var(offset), Var(offset + 1)], Rational::from(weights[0])),
                (vec![Var(offset + 1), Var(offset + 2)], Rational::from(weights[1])),
                (vec![Var(offset + 2), Var(offset + 3)], Rational::from(weights[2])),
            ],
        )
    };
    // Four pairwise non-isomorphic variants of the same 4-path skeleton: the
    // odd weight in the middle vs at the end (the path's only non-trivial
    // automorphism is the reflection, which fixes the middle clause), a
    // COUNT twin, and a MIN twin of the first weight placement.
    let middle = path(0, [2, 9, 2], AggregateKind::Sum);
    let end = path(0, [9, 2, 2], AggregateKind::Sum);
    let count = path(0, [1, 1, 1], AggregateKind::Count);
    let min = path(0, [2, 9, 2], AggregateKind::Min);

    let engine = Engine::new(EngineConfig::default());
    let mut session = engine.session();
    for lineage in [&middle, &end, &count, &min] {
        let attribution = session.attribute_aggregate(lineage).unwrap();
        assert!(!attribution.stats.cache_hit, "{:?} must get its own entry", lineage.kind());
    }
    // The Boolean skeleton itself keys apart from every weighted entry.
    let skeleton = middle.dnf().clone();
    assert!(!session.attribute(&skeleton).unwrap().stats.cache_hit);
    let stats = engine.stats().cache;
    assert_eq!(stats.insertions, 5, "five distinct entries, no sharing");
    assert_eq!(stats.hits, 0);
    // A genuine weighted isomorph — variables renamed, weights carried
    // along — is served from `middle`'s entry.
    let renamed = path(20, [2, 9, 2], AggregateKind::Sum);
    assert!(session.attribute_aggregate(&renamed).unwrap().stats.cache_hit);
    assert_eq!(engine.stats().cache.entries, 5);
    assert_eq!(engine.stats().cache.hits, 1);
}
