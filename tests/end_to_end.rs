//! Cross-crate integration tests: database → query → lineage → d-tree →
//! Banzhaf / Shapley / ranking, plus agreement between all algorithms.

use banzhaf_repro::prelude::*;

/// The App. D database: Q() :- R(X), S(X,Y), T(X,Z) over 18 endogenous facts.
fn app_d_setup() -> (Database, Dnf, FactId, FactId) {
    let mut db = Database::new();
    db.add_relation("R", 1);
    db.add_relation("S", 2);
    db.add_relation("T", 2);
    let r1 = db.insert_endogenous("R", vec![1.into()]).unwrap();
    let r2 = db.insert_endogenous("R", vec![2.into()]).unwrap();
    for b in 1..=3i64 {
        db.insert_endogenous("S", vec![1.into(), b.into()]).unwrap();
    }
    for b in 1..=2i64 {
        db.insert_endogenous("S", vec![2.into(), b.into()]).unwrap();
    }
    for b in 1..=3i64 {
        db.insert_endogenous("T", vec![1.into(), b.into()]).unwrap();
    }
    for b in 1..=8i64 {
        db.insert_endogenous("T", vec![2.into(), b.into()]).unwrap();
    }
    let query = parse_program("Q() :- R(X), S(X, Y), T(X, Z).").unwrap();
    let result = evaluate(&query, &db);
    let lineage = result.answers()[0].lineage.clone();
    (db, lineage, r1, r2)
}

#[test]
fn full_pipeline_on_paper_running_example() {
    // Examples 5–7 of the paper.
    let mut db = Database::new();
    db.add_relation("R", 3);
    db.add_relation("S", 3);
    db.add_relation("T", 2);
    let r = db.insert_endogenous("R", vec![1.into(), 2.into(), 3.into()]).unwrap();
    let s1 = db.insert_endogenous("S", vec![1.into(), 2.into(), 4.into()]).unwrap();
    db.insert_endogenous("S", vec![1.into(), 2.into(), 5.into()]).unwrap();
    let t = db.insert_endogenous("T", vec![1.into(), 6.into()]).unwrap();

    let query = parse_program("Q() :- R(X, Y, Z), S(X, Y, V), T(X, U).").unwrap();
    assert!(is_hierarchical(&query.disjuncts[0]));
    assert!(is_self_join_free(&query.disjuncts[0]));

    let result = evaluate(&query, &db);
    assert!(result.is_satisfied());
    let lineage = result.answers()[0].lineage.clone();
    assert_eq!(lineage.num_clauses(), 2);
    assert_eq!(lineage.num_vars(), 4);

    // Hierarchical query ⇒ the d-tree needs no Shannon expansion.
    let tree =
        DTree::compile_full(lineage.clone(), PivotHeuristic::MostFrequent, &Budget::unlimited())
            .unwrap();
    assert_eq!(tree.stats().exclusive, 0);

    let exact = exaban_all(&tree);
    assert_eq!(exact.model_count.to_u64(), Some(3));
    assert_eq!(exact.value(Var(r.0)).unwrap().to_u64(), Some(3));
    assert_eq!(exact.value(Var(s1.0)).unwrap().to_u64(), Some(1));
    assert_eq!(exact.value(Var(t.0)).unwrap().to_u64(), Some(3));

    // The most influential facts are R and T (tied), certified by IchiBan.
    let mut topk_tree = DTree::from_leaf(lineage);
    let topk =
        ichiban_topk(&mut topk_tree, 2, &IchiBanOptions::certain(), &Budget::unlimited()).unwrap();
    assert!(topk.certified);
    assert!(topk.members.contains(&Var(r.0)));
    assert!(topk.members.contains(&Var(t.0)));
}

#[test]
fn appendix_d_banzhaf_and_shapley_rankings_disagree() {
    let (_db, lineage, r1, r2) = app_d_setup();
    assert_eq!(lineage.num_vars(), 18);
    assert_eq!(lineage.num_clauses(), 9 + 16);

    let tree =
        DTree::compile_full(lineage, PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
    let banzhaf = exaban_all(&tree);
    let shapley = shapley_all(&tree);
    let v1 = Var(r1.0);
    let v2 = Var(r2.0);

    // The exact totals of the App. D table.
    assert_eq!(banzhaf.value(v1).unwrap().to_string(), "62867");
    assert_eq!(banzhaf.value(v2).unwrap().to_string(), "60435");
    // Banzhaf prefers R(a1), Shapley prefers R(a2).
    assert!(banzhaf.value(v1) > banzhaf.value(v2));
    assert!(shapley[&v1] < shapley[&v2]);

    // Per-size critical-set counts match selected rows of the App. D table.
    let critical = critical_counts_all(&tree);
    assert_eq!(critical[&v1][2].to_u64(), Some(9));
    assert_eq!(critical[&v2][2].to_u64(), Some(16));
    assert_eq!(critical[&v1][8].to_u64(), Some(13_129));
    assert_eq!(critical[&v2][8].to_u64(), Some(12_526));
    assert_eq!(critical[&v1][16].to_u64(), Some(1));
    assert_eq!(critical[&v2][16].to_u64(), Some(1));
    // And they sum to the Banzhaf values (Eq. (16)).
    let sum1: u64 = critical[&v1].iter().map(|c| c.to_u64().unwrap()).sum();
    assert_eq!(sum1, 62_867);
}

#[test]
fn all_algorithms_agree_on_workload_instances() {
    // Exact agreement of ExaBan, Sig22 and brute force, plus containment of
    // AdaBan intervals, on a sample of small workload lineages.
    let corpus = academic_like(&DatasetSpec::default());
    let mut checked = 0;
    for instance in &corpus.instances {
        let lineage = &instance.lineage;
        if lineage.num_vars() == 0 || lineage.num_vars() > 14 {
            continue;
        }
        let tree = DTree::compile_full(
            lineage.clone(),
            PivotHeuristic::MostFrequent,
            &Budget::unlimited(),
        )
        .unwrap();
        let exact = exaban_all(&tree);
        let sig = sig22_exact(lineage, &Budget::unlimited()).unwrap();
        assert_eq!(exact.model_count, lineage.brute_force_model_count());
        assert_eq!(exact.model_count, sig.model_count);

        let vars: Vec<Var> = lineage.universe().iter().collect();
        let mut partial = DTree::from_leaf(lineage.clone());
        let intervals = adaban_all(
            &mut partial,
            &vars,
            &AdaBanOptions::with_epsilon_str("0.1"),
            &Budget::unlimited(),
        )
        .unwrap();
        for (v, interval) in intervals {
            let truth = exact.value(v).unwrap();
            assert_eq!(Int::from(truth.clone()), lineage.brute_force_banzhaf(v));
            assert_eq!(exact.value(v), sig.value(v));
            assert!(&interval.lower <= truth && truth <= &interval.upper);
        }
        checked += 1;
        if checked >= 40 {
            break;
        }
    }
    assert!(checked >= 10, "expected enough small instances to check, got {checked}");
}

#[test]
fn hierarchical_queries_compile_without_shannon_expansion() {
    // Operational counterpart of the dichotomy (Thm. 17): hierarchical
    // lineages decompose into independent functions only.
    let mut db = Database::new();
    db.add_relation("R", 2);
    db.add_relation("S", 3);
    db.add_relation("T", 2);
    for x in 0..4i64 {
        db.insert_endogenous("R", vec![x.into(), (x * 10).into()]).unwrap();
        for y in 0..3i64 {
            db.insert_endogenous("S", vec![x.into(), y.into(), (x + y).into()]).unwrap();
        }
        db.insert_endogenous("T", vec![x.into(), (x + 100).into()]).unwrap();
    }
    let hierarchical = parse_program("Q() :- R(X, A), S(X, Y, B), T(X, C).").unwrap();
    assert!(is_hierarchical(&hierarchical.disjuncts[0]));
    let lineage = evaluate(&hierarchical, &db).answers()[0].lineage.clone();
    let tree =
        DTree::compile_full(lineage, PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
    assert_eq!(tree.stats().exclusive, 0);

    // The basic non-hierarchical query over the same data does need Shannon
    // expansion.
    let mut db2 = Database::new();
    db2.add_relation("R", 1);
    db2.add_relation("S", 2);
    db2.add_relation("T", 1);
    for x in 0..3i64 {
        db2.insert_endogenous("R", vec![x.into()]).unwrap();
        db2.insert_endogenous("T", vec![x.into()]).unwrap();
        for y in 0..3i64 {
            db2.insert_endogenous("S", vec![x.into(), y.into()]).unwrap();
        }
    }
    let non_hierarchical = parse_program("Q() :- R(X), S(X, Y), T(Y).").unwrap();
    assert!(!is_hierarchical(&non_hierarchical.disjuncts[0]));
    let lineage = evaluate(&non_hierarchical, &db2).answers()[0].lineage.clone();
    let tree =
        DTree::compile_full(lineage, PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
    assert!(tree.stats().exclusive > 0);
}

#[test]
fn union_queries_and_exogenous_facts() {
    let mut db = Database::new();
    db.add_relation("Movie", 2);
    db.add_relation("Directs", 2);
    db.add_relation("Genre", 2);
    db.insert_endogenous("Movie", vec![0.into(), 2016.into()]).unwrap();
    db.insert_endogenous("Movie", vec![1.into(), 1990.into()]).unwrap();
    db.insert_endogenous("Directs", vec![7.into(), 1.into()]).unwrap();
    db.insert_exogenous("Genre", vec![0.into(), 1.into()]).unwrap();

    let query =
        parse_program("Q(M) :- Movie(M, Y), Y >= 2015. Q(M) :- Directs(7, M), Movie(M, Y).")
            .unwrap();
    let result = evaluate(&query, &db);
    assert_eq!(result.answers().len(), 2);
    // The answer produced by the second disjunct depends on two facts.
    let lineage = result.lineage_of(&[Value::from(1)]).unwrap();
    assert_eq!(lineage.num_vars(), 2);
    let tree =
        DTree::compile_full(lineage.clone(), PivotHeuristic::MostFrequent, &Budget::unlimited())
            .unwrap();
    let values = exaban_all(&tree);
    for v in lineage.universe().iter() {
        assert_eq!(values.value(v).unwrap().to_u64(), Some(1));
    }
}

#[test]
fn exaban_and_sig22_agree_on_random_dnfs() {
    // Regression guard for the baseline wiring: the paper's exact algorithm
    // (DNF d-tree compilation) and the Sig22 competitor (CNF encoding + DPLL)
    // must produce identical model counts and Banzhaf values on random small
    // DNFs, which are also cross-checked against brute force.
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(0x5EED);
    for round in 0..20u64 {
        let shape = LineageShape {
            num_vars: 4 + (round as usize % 9),
            num_clauses: 2 + (round as usize % 7),
            min_width: 1,
            max_width: 3,
            skew: 0.5,
        };
        let phi = LineageGenerator::new(shape).generate(&mut rng);
        let tree =
            DTree::compile_full(phi.clone(), PivotHeuristic::MostFrequent, &Budget::unlimited())
                .unwrap();
        let exact = exaban_all(&tree);
        let sig = sig22_exact(&phi, &Budget::unlimited()).unwrap();
        assert_eq!(exact.model_count, sig.model_count, "model counts differ on round {round}");
        assert_eq!(exact.model_count, phi.brute_force_model_count());
        for v in phi.universe().iter() {
            assert_eq!(
                exact.value(v),
                sig.value(v),
                "Banzhaf values differ for {v:?} on round {round}"
            );
            assert_eq!(Int::from(exact.value(v).unwrap().clone()), phi.brute_force_banzhaf(v));
        }
    }
}

#[test]
fn normalizations_and_error_measures_pipeline() {
    let corpus = imdb_like(&DatasetSpec::default());
    let instance = corpus
        .instances
        .iter()
        .find(|i| i.lineage.num_vars() >= 5 && i.lineage.num_vars() <= 12)
        .expect("mid-sized instance exists");
    let tree = DTree::compile_full(
        instance.lineage.clone(),
        PivotHeuristic::MostFrequent,
        &Budget::unlimited(),
    )
    .unwrap();
    let exact = exaban_all(&tree);
    let index = normalized_index(&exact.values);
    let total: f64 = index.values().sum();
    assert!((total - 1.0).abs() < 1e-9 || total == 0.0);
    let power = normalized_power(&exact.values, instance.lineage.num_vars());
    assert!(power.values().all(|&p| (0.0..=1.0).contains(&p)));
    // An exact "estimate" has zero normalized ℓ1 distance.
    let as_estimate: std::collections::HashMap<Var, f64> =
        exact.values.iter().map(|(v, b)| (*v, b.to_f64())).collect();
    assert!(l1_distance_normalized(&as_estimate, &exact.values) < 1e-9);
}
