//! Chaos suite: deterministic fault injection against the serving stack
//! (`cargo test --features failpoints`).
//!
//! Every test here arms failpoints planted in production code (see
//! `crates/par/src/failpoints.rs` for the registry) and asserts the
//! robustness invariants of the stack:
//!
//! 1. **Every ticket resolves** — to a value, a degraded value, or a typed
//!    error; never a hang, never a poisoned client.
//! 2. **The shared cache stays consistent** — no torn entries: a panicked or
//!    starved compile never inserts, counters never contradict each other.
//! 3. **Live updates keep their total order** — a panicking update advances
//!    the turn, so the stream behind it never deadlocks.
//! 4. **Completed answers are bit-identical** to an undisturbed run.
//! 5. **Degraded answers bracket (interval rung) or estimate (sampling
//!    rung)** the exact value.
//!
//! The failpoint registry is process-global, so every test serializes on one
//! mutex.
#![cfg(feature = "failpoints")]

use banzhaf_repro::par::failpoints::{arm, hits, FailAction, Trigger};
use banzhaf_repro::prelude::*;
use proptest::prelude::*;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Serializes the whole suite: armed sites are process-global state.
static FAULTS: Mutex<()> = Mutex::new(());

fn faults_lock() -> std::sync::MutexGuard<'static, ()> {
    // A failed assertion in another chaos test poisons this mutex; that
    // test already reported its failure, so just keep going.
    FAULTS.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A ring lineage: real Shannon-expansion work, exponential in `vars`.
fn ring(offset: u32, vars: u32) -> Dnf {
    Dnf::from_clauses(
        (0..vars).map(|i| vec![Var(offset + i), Var(offset + (i + 1) % vars)]).collect::<Vec<_>>(),
    )
}

/// Exact values of `lineage` from an undisturbed, cache-free, strict run.
fn undisturbed(lineage: &Dnf) -> Attribution {
    Engine::new(EngineConfig::default().with_cache_config(CacheConfig::disabled()))
        .session()
        .attribute(lineage)
        .unwrap()
}

/// Invariant 5: a degraded (or exact) score agrees with the undisturbed run.
fn assert_tracks_exact(served: &Attribution, exact: &Attribution, lineage: &Dnf) {
    for x in lineage.universe().iter() {
        let want = exact.value(x).unwrap().exact().unwrap();
        match served.value(x).unwrap() {
            Score::Exact(got) => assert_eq!(got, &want, "exact answers must be bit-identical"),
            Score::Interval(i) => {
                assert!(i.lower <= want && want <= i.upper, "interval must bracket exact");
            }
            Score::Estimate(e) => assert!(e.is_finite() && *e >= 0.0, "estimate must be finite"),
            Score::Rational(_) => panic!("Boolean rungs never return aggregate scores"),
        }
    }
}

/// Invariant 2: no combination of faults may tear the cache counters.
fn assert_cache_consistent(stats: &CacheStats) {
    assert!(stats.entries <= stats.capacity, "over-full cache: {stats:?}");
    assert!(stats.entries as u64 <= stats.insertions, "entries from nowhere: {stats:?}");
    assert!(stats.evictions <= stats.insertions, "evicted more than inserted: {stats:?}");
    assert!(stats.canon_searches <= stats.canon_steps + stats.canon_searches, "{stats:?}");
}

#[test]
fn worker_panic_mid_compile_quarantines_instead_of_inserting() {
    let _lock = faults_lock();
    let service = AttributionService::start(ServeConfig::default().with_workers(1));
    let shape = ring(0, 10);
    let expected = undisturbed(&shape);
    {
        let _fp = arm("serve::worker_compile", Trigger::NthHit(1), FailAction::Panic("chaos"));
        let ticket = service.submit(shape.clone(), RequestOptions::default()).unwrap();
        assert_eq!(ticket.wait().unwrap_err(), ServeError::Failed);
        assert!(hits("serve::worker_compile") > 0, "the planted site must be reached");
    }
    // Nothing half-built reached the cache, and the worker survived on a
    // fresh session: the same shape now compiles cleanly and bit-identically.
    assert_eq!(service.engine_stats().cache.insertions, 0);
    let served = service.submit(shape.clone(), RequestOptions::default()).unwrap().wait().unwrap();
    assert_eq!(served.exact_values().unwrap(), expected.exact_values().unwrap());
    assert_eq!(service.engine_stats().cache.insertions, 1);
}

#[test]
fn compile_panic_under_a_ladder_degrades_the_answer() {
    let _lock = faults_lock();
    let shape = ring(0, 8);
    let expected = undisturbed(&shape);
    let engine = Engine::new(EngineConfig::default().with_fallback(FallbackPolicy::ladder()));
    let mut session = engine.session();
    let att = {
        let _fp = arm("session::compile", Trigger::NthHit(1), FailAction::Panic("chaos"));
        session.attribute(&shape).expect("the ladder resolves a panicked compile")
    };
    let degradation = att.degradation.expect("panicked primary must degrade");
    assert_eq!(degradation.reason, DegradeReason::WorkerPanic);
    assert_tracks_exact(&att, &expected, &shape);
    // The panicked compile's partial d-tree is quarantined with its stack.
    assert_eq!(engine.stats().cache.insertions, 0);
    assert_eq!(session.stats().degraded, 1);
}

#[test]
fn merge_panic_never_tears_the_shared_cache() {
    let _lock = faults_lock();
    let engine = Engine::new(EngineConfig::default());
    let shape = ring(0, 8);
    let expected = undisturbed(&shape);
    {
        let _fp = arm("session::merge", Trigger::NthHit(1), FailAction::Panic("chaos"));
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.session().attribute(&shape)
        }));
        assert!(panicked.is_err(), "the merge failpoint must fire");
    }
    // The interrupted merge inserted nothing and poisoned nothing: a fresh
    // session compiles and caches the shape as if nothing happened.
    let stats = engine.stats().cache;
    assert_eq!(stats.insertions, 0);
    assert_cache_consistent(&stats);
    let again = engine.session().attribute(&shape).unwrap();
    assert_eq!(again.exact_values().unwrap(), expected.exact_values().unwrap());
    assert_eq!(engine.stats().cache.insertions, 1);
}

#[test]
fn take_turn_panic_advances_the_turn_and_recovers_the_lock() {
    let _lock = faults_lock();
    let mut db = Database::new();
    db.add_relation("R", 1);
    db.insert_endogenous("R", vec![0.into()]).unwrap();
    let query = parse_program("Q(X) :- R(X).").unwrap();
    let service = AttributionService::start(
        ServeConfig::default().with_workers(2).with_live_database(db).with_live_query("q", query),
    );
    {
        let _fp = arm("serve::take_turn", Trigger::NthHit(1), FailAction::Panic("chaos"));
        let poisoned =
            service.submit_update(Update::insert("R", vec![1.into()]), RequestOptions::default());
        assert_eq!(poisoned.unwrap().wait().unwrap_err(), ServeError::Failed);
        assert!(hits("serve::take_turn") > 0);
    }
    // The turn advanced past the panicked sequence number: the next update
    // applies (no deadlock), and `lock_live` recovered the poisoned state
    // lock for snapshots.
    let report = service
        .submit_update(Update::insert("R", vec![2.into()]), RequestOptions::default())
        .unwrap()
        .wait()
        .expect("the stream continues past a panicked update");
    assert_eq!(report.touched.len(), 1);
    assert_eq!(service.live_attribution("q").unwrap().answers.len(), 2);
}

#[test]
fn apply_update_panic_fails_one_ticket_not_the_stream() {
    let _lock = faults_lock();
    let mut db = Database::new();
    db.add_relation("R", 1);
    let query = parse_program("Q(X) :- R(X).").unwrap();
    let service = AttributionService::start(
        ServeConfig::default().with_workers(1).with_live_database(db).with_live_query("q", query),
    );
    {
        let _fp = arm("live::apply_update", Trigger::NthHit(1), FailAction::Panic("chaos"));
        let first =
            service.submit_update(Update::insert("R", vec![1.into()]), RequestOptions::default());
        assert_eq!(first.unwrap().wait().unwrap_err(), ServeError::Failed);
    }
    // The panic unwound inside the turn; the database mutated nothing, and
    // later updates flow normally.
    let report = service
        .submit_update(Update::insert("R", vec![7.into()]), RequestOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(report.touched[0].tuple, vec![Value::from(7)]);
    assert_eq!(service.live_attribution("q").unwrap().answers.len(), 1);
}

#[test]
fn injected_queue_full_is_typed_and_retryable() {
    let _lock = faults_lock();
    let service =
        AttributionService::start(ServeConfig::default().with_workers(1).with_queue_capacity(16));
    let _fp = arm("queue::try_push_full", Trigger::NthHit(1), FailAction::Trigger);
    // The injected backpressure is indistinguishable from the real thing…
    let refused = service.submit(ring(0, 4), RequestOptions::default());
    assert_eq!(refused.unwrap_err(), Rejected::QueueFull { capacity: 16 });
    // …and one deterministic backoff later the retry path rides it out.
    let ticket = service
        .submit_with_retry(ring(0, 4), RequestOptions::default(), &RetryPolicy::default())
        .expect("transient fullness must be survivable");
    assert!(ticket.wait().is_ok());
    assert_eq!(service.stats().rejected, 1);
}

#[test]
fn interrupted_canonicalization_is_a_miss_never_a_wrong_key() {
    let _lock = faults_lock();
    // Every budgeted refinement round reports interruption: no instance can
    // be keyed, so isomorphic lineages compile independently — correct
    // values, zero sharing, and crucially zero *wrong* sharing.
    let _fp = arm("canon::refine", Trigger::Always, FailAction::Trigger);
    let engine = Engine::new(EngineConfig::default());
    let mut session = engine.session();
    let batch = [ring(0, 6), ring(100, 6)];
    let refs: Vec<&Dnf> = batch.iter().collect();
    let budget = Budget::with_max_steps(1_000_000);
    let outcomes = session.attribute_batch(&refs, BatchOptions::new().with_shared_budget(&budget));
    assert!(hits("canon::refine") > 0, "the descent must consult the budget");
    let expected = undisturbed(&batch[0]);
    for (lineage, outcome) in batch.iter().zip(&outcomes) {
        let att = outcome.as_ref().expect("interrupted keying must not fail the instance");
        assert!(!att.stats.cache_hit, "unkeyed instances cannot be hits");
        for (i, x) in lineage.universe().iter().enumerate() {
            let want = expected.value(Var(i as u32)).unwrap().exact().unwrap();
            assert_eq!(att.value(x).unwrap().exact().unwrap(), want);
        }
    }
    assert_cache_consistent(&engine.stats().cache);
}

#[test]
fn cache_lock_contention_slows_but_never_corrupts() {
    let _lock = faults_lock();
    // Stretch the race windows around the cache's lock with injected sleeps
    // while two workers hammer isomorphic shapes.
    let _slow =
        arm("cache::lookup", Trigger::EveryK(2), FailAction::Sleep(Duration::from_millis(1)));
    let _slow2 =
        arm("cache::insert", Trigger::EveryK(2), FailAction::Sleep(Duration::from_millis(1)));
    let service = AttributionService::start(ServeConfig::default().with_workers(2));
    let expected = undisturbed(&ring(0, 12));
    let tickets: Vec<Ticket> = (0..8u32)
        .map(|i| service.submit(ring(i * 100, 12), RequestOptions::default()).unwrap())
        .collect();
    for (i, outcome) in block_on(join_all(tickets)).into_iter().enumerate() {
        let att = outcome.expect("contention must not fail requests");
        let offset = i as u32 * 100;
        for j in 0..12u32 {
            assert_eq!(
                att.value(Var(offset + j)).unwrap().exact().unwrap(),
                expected.value(Var(j)).unwrap().exact().unwrap()
            );
        }
    }
    let stats = service.engine_stats().cache;
    assert_cache_consistent(&stats);
    assert!(stats.hits + stats.insertions >= 8, "all eight requests settled: {stats:?}");
}

/// The failpoint sites the randomized schedule may arm, with the action each
/// site tolerates from a *client-invisible* position (panics there are caught
/// by a worker or turn guard; triggers are interpreted by the site).
const PANIC_SITES: &[&str] = &[
    "session::compile",
    "session::merge",
    "serve::worker_compile",
    "cache::lookup",
    "cache::insert",
    "serve::take_turn",
    "live::apply_update",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random request/update streams under random failpoint schedules: the
    /// five invariants at the top of this file, all at once.
    #[test]
    fn random_fault_schedules_never_wedge_the_service(
        seed in any::<u64>(),
        p_permille in 50u32..350,
        mask in 0u8..128,
        sleepy in any::<bool>(),
    ) {
        let p = f64::from(p_permille) / 1000.0;
        let _lock = faults_lock();
        let small = ring(0, 6);
        let large = ring(0, 10);
        let expected_small = undisturbed(&small);
        let expected_large = undisturbed(&large);

        // Arm a random subset of sites with a seeded probabilistic panic —
        // the same (seed, p, mask) replays the same fault schedule.
        let mut guards = Vec::new();
        for (bit, site) in PANIC_SITES.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                guards.push(arm(
                    site,
                    Trigger::Probability { seed: seed.wrapping_add(bit as u64), p },
                    FailAction::Panic("chaos schedule"),
                ));
            }
        }
        if sleepy {
            guards.push(arm(
                "canon::refine",
                Trigger::Probability { seed, p },
                FailAction::Trigger,
            ));
        }

        let mut db = Database::new();
        db.add_relation("R", 1);
        let query = parse_program("Q(X) :- R(X).").unwrap();
        let service = AttributionService::start(
            ServeConfig::default()
                .with_workers(2)
                .with_queue_capacity(64)
                .with_live_database(db)
                .with_live_query("q", query),
        );

        // A mixed stream: strict requests, ladder requests under a starving
        // step cap, and live updates of distinct tuples.
        let mut strict_tickets = Vec::new();
        let mut ladder_tickets = Vec::new();
        let mut update_tickets = Vec::new();
        for i in 0..6u32 {
            let shape = if i % 2 == 0 { small.clone() } else { large.clone() };
            let shifted = Dnf::from_clauses(
                shape.clauses().iter().map(|c| {
                    c.iter().map(|v| Var(v.0 + 1000 * (i + 1))).collect::<Vec<_>>()
                }),
            );
            strict_tickets.push((i, service
                .submit(shifted.clone(), RequestOptions::default())
                .unwrap()));
            ladder_tickets.push((i, service
                .submit(
                    shifted,
                    RequestOptions::new()
                        .with_max_steps(3)
                        .with_fallback(FallbackPolicy::ladder()),
                )
                .unwrap()));
            update_tickets.push(service
                .submit_update(Update::insert("R", vec![i64::from(i).into()]), RequestOptions::default())
                .unwrap());
        }

        // Invariant 1: every ticket resolves (no hangs — `wait` returns).
        let mut applied = 0u64;
        for ticket in update_tickets {
            // Invariant 3: failed updates advance the turn; the stream never
            // wedges, and each success is a real, whole application.
            if let Ok(report) = ticket.wait() {
                prop_assert_eq!(report.touched.len(), 1);
                applied += 1;
            }
        }
        for (i, ticket) in strict_tickets {
            // Invariant 4: whatever completes exactly is bit-identical.
            if let Ok(att) = ticket.wait() {
                prop_assert!(att.degradation.is_none(), "strict requests never degrade");
                let expected =
                    if i % 2 == 0 { &expected_small } else { &expected_large };
                let vars = if i % 2 == 0 { 6 } else { 10 };
                for j in 0..vars {
                    prop_assert_eq!(
                        att.value(Var(1000 * (i + 1) + j)).unwrap().exact().unwrap(),
                        expected.value(Var(j)).unwrap().exact().unwrap()
                    );
                }
            }
        }
        for (i, ticket) in ladder_tickets {
            // Invariant 5: degraded answers bracket or estimate the exact
            // value (and exact ones match it bit-for-bit).
            if let Ok(att) = ticket.wait() {
                let expected = if i % 2 == 0 { &expected_small } else { &expected_large };
                let shape = if i % 2 == 0 { &small } else { &large };
                let shifted = Dnf::from_clauses(
                    shape.clauses().iter().map(|c| {
                        c.iter().map(|v| Var(v.0 + 1000 * (i + 1))).collect::<Vec<_>>()
                    }),
                );
                for (j, x) in shifted.universe().iter().enumerate() {
                    let want = expected.value(Var(j as u32)).unwrap().exact().unwrap();
                    match att.value(x).unwrap() {
                        Score::Exact(got) => prop_assert_eq!(got, &want),
                        Score::Interval(iv) => {
                            prop_assert!(iv.lower <= want && want <= iv.upper);
                        }
                        Score::Estimate(e) => prop_assert!(e.is_finite() && *e >= 0.0),
                        Score::Rational(_) => {
                            prop_assert!(false, "Boolean rungs never return aggregate scores");
                        }
                    }
                }
            }
        }

        // Invariant 2: the cache's counters are consistent under any fault
        // schedule, and the live answer count equals the applied updates.
        let cache = service.engine_stats().cache;
        prop_assert!(cache.entries <= cache.capacity);
        prop_assert!(cache.entries as u64 <= cache.insertions);
        prop_assert!(cache.evictions <= cache.insertions);
        prop_assert_eq!(
            service.live_attribution("q").unwrap().answers.len() as u64,
            applied
        );

        // Disarm everything and prove the service is unharmed: a clean
        // request compiles and matches the undisturbed run bit-for-bit.
        drop(guards);
        let clean = service
            .submit(small.clone(), RequestOptions::default())
            .unwrap()
            .wait()
            .expect("service must be healthy after the schedule");
        prop_assert_eq!(
            clean.exact_values().unwrap(),
            expected_small.exact_values().unwrap()
        );
    }
}
