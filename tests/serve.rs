//! Serving-semantics integration tests: backpressure, deadlines,
//! cancellation, shutdown, and shared-cache bit-identity.

use banzhaf_repro::prelude::*;
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// A ring lineage (connected, no common variable): real Shannon-expansion
/// work, exponential in `vars`, so large rings make long-running requests.
fn ring(offset: u32, vars: u32) -> Dnf {
    Dnf::from_clauses(
        (0..vars).map(|i| vec![Var(offset + i), Var(offset + (i + 1) % vars)]).collect::<Vec<_>>(),
    )
}

/// Spins until `predicate` holds (with a generous guard against hangs).
fn wait_for(what: &str, predicate: impl Fn() -> bool) {
    let start = Instant::now();
    while !predicate() {
        assert!(start.elapsed() < Duration::from_secs(30), "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

#[test]
fn queue_full_submissions_are_rejected_with_the_capacity() {
    // One worker, deterministically busy: the in-flight request is a large
    // ring under an unlimited budget, cancelled at the end of the test.
    let service =
        AttributionService::start(ServeConfig::default().with_workers(1).with_queue_capacity(2));
    let busy = service.submit(ring(0, 40), RequestOptions::default()).unwrap();
    wait_for("the worker to pick up the busy request", || service.stats().in_flight == 1);

    // The queue is empty again; fill it to capacity, then overflow.
    let queued: Vec<Ticket> = (0..2)
        .map(|i| service.submit(ring(100 * (i + 1), 4), RequestOptions::default()).unwrap())
        .collect();
    let overflow = service.submit(ring(900, 4), RequestOptions::default());
    assert_eq!(overflow.unwrap_err(), Rejected::QueueFull { capacity: 2 });
    assert_eq!(service.stats().rejected, 1);

    // Backpressure is not a poisoned state: cancelling the busy request
    // drains the queue and the queued work completes normally.
    busy.cancel();
    assert_eq!(busy.wait().unwrap_err(), ServeError::Cancelled);
    for ticket in queued {
        assert!(ticket.wait().is_ok());
    }
    assert!(
        service.submit(ring(950, 4), RequestOptions::default()).is_ok(),
        "capacity is available again"
    );
}

#[test]
fn deadline_expired_requests_return_interrupted_without_poisoning_the_cache() {
    let service = AttributionService::start(ServeConfig::default().with_workers(1));
    let shape = ring(0, 24);

    // A hopeless deadline: the request is interrupted (queued or
    // mid-compile), and nothing partial may enter the shared cache.
    let starved =
        service.submit(shape.clone(), RequestOptions::new().with_timeout(Duration::ZERO)).unwrap();
    assert_eq!(starved.wait().unwrap_err(), ServeError::Interrupted);
    assert_eq!(service.engine_stats().cache.insertions, 0, "interrupted work must not be cached");

    // A step-capped request interrupted *mid-compile* must not poison it
    // either.
    let step_starved =
        service.submit(shape.clone(), RequestOptions::new().with_max_steps(3)).unwrap();
    assert_eq!(step_starved.wait().unwrap_err(), ServeError::Interrupted);
    assert_eq!(service.engine_stats().cache.insertions, 0);

    // The same shape then succeeds under an ample budget, and its result is
    // bit-identical to a cold single-session run.
    let served = service.submit(shape.clone(), RequestOptions::default()).unwrap().wait().unwrap();
    let cold = Engine::new(EngineConfig::default().with_cache_config(CacheConfig::disabled()))
        .session()
        .attribute(&shape)
        .unwrap();
    assert_eq!(served.exact_values().unwrap(), cold.exact_values().unwrap());
    assert_eq!(served.model_count, cold.model_count);
    assert_eq!(service.engine_stats().cache.insertions, 1);
}

#[test]
fn cancellation_interrupts_a_request_mid_compile() {
    let service = AttributionService::start(ServeConfig::default().with_workers(1));
    // Large enough that compilation takes far longer than the cancellation
    // latency (one budget clock period).
    let ticket = service.submit(ring(0, 44), RequestOptions::default()).unwrap();
    wait_for("the request to start", || service.stats().in_flight == 1);
    let cancel_at = Instant::now();
    ticket.cancel();
    assert_eq!(ticket.wait().unwrap_err(), ServeError::Cancelled);
    assert!(
        cancel_at.elapsed() < Duration::from_secs(5),
        "cooperative cancellation must interrupt the compile promptly"
    );
    // The aborted compilation never reaches the shared cache.
    assert_eq!(service.engine_stats().cache.insertions, 0);
    // The worker survives and serves the next request.
    assert!(service.submit(ring(0, 6), RequestOptions::default()).unwrap().wait().is_ok());
}

#[test]
fn cancelled_while_queued_never_runs() {
    let service =
        AttributionService::start(ServeConfig::default().with_workers(1).with_queue_capacity(4));
    let busy = service.submit(ring(0, 40), RequestOptions::default()).unwrap();
    wait_for("the worker to pick up the busy request", || service.stats().in_flight == 1);
    let queued = service.submit(ring(200, 20), RequestOptions::default()).unwrap();
    queued.cancel();
    busy.cancel();
    assert_eq!(queued.wait().unwrap_err(), ServeError::Cancelled);
    // Neither the cancelled-in-queue nor the cancelled-in-flight request
    // contributed anything to the cache.
    assert_eq!(service.engine_stats().cache.insertions, 0);
}

#[test]
fn shutdown_fails_queued_requests_and_rejects_new_ones() {
    let service =
        AttributionService::start(ServeConfig::default().with_workers(1).with_queue_capacity(8));
    let busy = service.submit(ring(0, 40), RequestOptions::default()).unwrap();
    wait_for("the worker to pick up the busy request", || service.stats().in_flight == 1);
    let queued = service.submit(ring(100, 8), RequestOptions::default()).unwrap();
    // Shut down while the worker is provably busy: the queued request is
    // failed by the drain, never served. The busy request is cancelled from
    // a side thread so the (graceful) worker join can finish.
    std::thread::scope(|scope| {
        let busy = &busy;
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            busy.cancel();
        });
        service.shutdown();
    });
    assert_eq!(queued.wait().unwrap_err(), ServeError::ShutDown);
}

#[test]
fn concurrent_clients_share_the_cache_across_sessions() {
    let service = AttributionService::start(ServeConfig::default().with_workers(2));
    // Two client threads submit isomorphic workloads concurrently.
    std::thread::scope(|scope| {
        for client in 0..2u32 {
            let service = &service;
            scope.spawn(move || {
                for i in 0..6u32 {
                    let offset = client * 1000 + i * 40;
                    let att = service
                        .submit(ring(offset, 18), RequestOptions::default())
                        .unwrap()
                        .wait()
                        .unwrap();
                    assert!(att.is_exact());
                }
            });
        }
    });
    let cache = service.engine_stats().cache;
    // Twelve isomorphic requests, one distinct shape: at most two compile
    // (both workers racing the cold shape), the rest are shared-cache hits.
    assert!(cache.hits >= 10, "cross-session reuse expected: {cache:?}");
    assert!(cache.insertions <= 2);
    let stats = service.stats();
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.failed, 0);
}

/// A service hosting a live database: three `R` facts, one `S` fact, and a
/// registered join query with the single answer `Q(0)`.
fn live_service(workers: usize) -> AttributionService {
    let mut db = Database::new();
    db.add_relation("R", 1);
    db.add_relation("S", 2);
    for i in 0..3 {
        db.insert_endogenous("R", vec![i.into()]).unwrap();
    }
    db.insert_endogenous("S", vec![0.into(), 0.into()]).unwrap();
    let query = parse_program("Q(X) :- R(X), S(X, Y).").unwrap();
    AttributionService::start(
        ServeConfig::default()
            .with_workers(workers)
            .with_live_database(db)
            .with_live_query("q", query),
    )
}

#[test]
fn updates_on_a_non_live_service_are_rejected() {
    let service = AttributionService::start(ServeConfig::default().with_workers(1));
    assert!(!service.is_live());
    let rejected =
        service.submit_update(Update::insert("R", vec![1.into()]), RequestOptions::default());
    assert_eq!(rejected.unwrap_err(), Rejected::NotLive);
    assert!(service.live_attribution("q").is_none());
    assert!(service.live_stats().is_none());
}

#[test]
fn update_tickets_resolve_to_reports_and_snapshots_track_the_stream() {
    let service = live_service(2);
    assert!(service.is_live());
    assert_eq!(service.live_attribution("q").unwrap().answers.len(), 1);

    // A new joining fact adds the answer Q(1).
    let report = service
        .submit_update(Update::insert("S", vec![1.into(), 9.into()]), RequestOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(report.touched.len(), 1);
    assert_eq!(report.touched[0].change, AnswerChange::Added);
    assert_eq!(report.touched[0].tuple, vec![Value::from(1)]);
    let snapshot = service.live_attribution("q").unwrap();
    assert_eq!(snapshot.answers.len(), 2);

    // Deleting a fact no registered answer mentions touches nothing.
    let report = service
        .submit_update(Update::delete("R", vec![2.into()]), RequestOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    assert!(report.touched.is_empty());
    assert_eq!(report.compile_steps, 0);

    // An update naming an unknown fact fails its own ticket without
    // stalling the stream behind it.
    let invalid = service
        .submit_update(Update::delete("S", vec![8.into(), 8.into()]), RequestOptions::default())
        .unwrap();
    assert_eq!(invalid.wait().unwrap_err(), ServeError::InvalidUpdate);
    let after = service
        .submit_update(Update::delete("S", vec![1.into(), 9.into()]), RequestOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(after.touched[0].change, AnswerChange::Removed);
    assert_eq!(service.live_attribution("q").unwrap().answers.len(), 1);
    assert_eq!(service.live_stats().unwrap().updates, 3);
}

#[test]
fn live_updates_apply_in_submission_order_even_across_workers() {
    // Alternating insert/delete of the *same* tuple is order-sensitive:
    // any reordering makes a delete resolve against an absent fact and fail
    // with InvalidUpdate. With two workers racing the queue, every ticket
    // succeeding proves updates are serialized in submission order.
    let service = live_service(2);
    let mut tickets = Vec::new();
    for _ in 0..8 {
        for update in [
            Update::insert("S", vec![1.into(), 7.into()]),
            Update::delete("S", vec![1.into(), 7.into()]),
        ] {
            tickets.push(service.submit_update(update, RequestOptions::default()).unwrap());
        }
    }
    // Plain attribution traffic rides along without disturbing the stream.
    let attribution = service.submit(ring(500, 8), RequestOptions::default()).unwrap();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let report = ticket.wait().unwrap_or_else(|e| panic!("update {i} out of order: {e:?}"));
        let expected = if i % 2 == 0 { AnswerChange::Added } else { AnswerChange::Removed };
        assert_eq!(report.touched[0].change, expected, "update {i}");
    }
    assert!(attribution.wait().is_ok());
    let stats = service.live_stats().unwrap();
    assert_eq!((stats.updates, stats.inserts, stats.deletes), (16, 8, 8));
    // The stream ends on a delete: back to the single initial answer.
    let snapshot = service.live_attribution("q").unwrap();
    assert_eq!(snapshot.answers.len(), 1);
    assert_eq!(snapshot.answers[0].tuple, vec![Value::from(0)]);
}

#[test]
fn ladder_requests_degrade_instead_of_interrupting() {
    let service = AttributionService::start(ServeConfig::default().with_workers(1));
    let shape = ring(0, 10);
    // Under the default strict policy a three-step budget is a typed error…
    let strict = service.submit(shape.clone(), RequestOptions::new().with_max_steps(3)).unwrap();
    assert_eq!(strict.wait().unwrap_err(), ServeError::Interrupted);
    assert_eq!(service.engine_stats().cache.insertions, 0);
    // …under the ladder the same starvation produces a degraded answer.
    let degraded = service
        .submit(
            shape.clone(),
            RequestOptions::new().with_max_steps(3).with_fallback(FallbackPolicy::ladder()),
        )
        .unwrap()
        .wait()
        .expect("the ladder resolves the starved request");
    let degradation = degraded.degradation.expect("resolved on a fallback rung");
    assert_eq!(degradation.reason, DegradeReason::BudgetExhausted);
    // The degraded score brackets (or estimates) the exact value, computed
    // here by an unconstrained cold run.
    let exact = Engine::new(EngineConfig::default().with_cache_config(CacheConfig::disabled()))
        .session()
        .attribute(&shape)
        .unwrap();
    for x in shape.universe().iter() {
        let want = exact.value(x).unwrap().exact().unwrap();
        match degraded.value(x).unwrap() {
            Score::Exact(got) => assert_eq!(got, &want),
            Score::Interval(i) => assert!(i.lower <= want && want <= i.upper),
            Score::Estimate(e) => assert!(e.is_finite() && *e >= 0.0),
            Score::Rational(_) => panic!("Boolean rungs never return aggregate scores"),
        }
    }
    // Degraded work never enters the shared cache, and the counters tell the
    // operator how much of the traffic is running degraded.
    assert_eq!(service.engine_stats().cache.insertions, 0);
    let stats = service.stats();
    assert_eq!(stats.degraded, 1);
    assert!(stats.fallback_steps > 0);
    assert_eq!(stats.completed, 1);
}

#[test]
fn ladder_resolves_requests_that_expired_in_the_queue() {
    // A zero deadline is hopeless for the primary attributor even before the
    // worker picks the request up; the ladder's grace allowance still
    // produces an answer instead of dropping the request.
    let service = AttributionService::start(ServeConfig::default().with_workers(1));
    let ticket = service
        .submit(
            ring(0, 24),
            RequestOptions::new()
                .with_timeout(Duration::ZERO)
                .with_fallback(FallbackPolicy::ladder()),
        )
        .unwrap();
    let attribution = ticket.wait().expect("grace allowance answers expired requests");
    assert!(attribution.degradation.is_some());
}

#[test]
fn retry_backoff_is_deterministic_and_bounded() {
    let policy = RetryPolicy::default();
    assert_eq!(policy.backoff(0), Duration::from_millis(1));
    assert_eq!(policy.backoff(1), Duration::from_millis(2));
    assert_eq!(policy.backoff(2), Duration::from_millis(4));
    assert_eq!(policy.backoff(30), Duration::from_millis(50), "saturates at the cap");
    assert_eq!(policy.backoff(u32::MAX), Duration::from_millis(50), "no overflow");
}

#[test]
fn submit_with_retry_rides_out_transient_queue_full() {
    let service =
        AttributionService::start(ServeConfig::default().with_workers(1).with_queue_capacity(1));
    let busy = service.submit(ring(0, 40), RequestOptions::default()).unwrap();
    wait_for("the worker to pick up the busy request", || service.stats().in_flight == 1);
    // Fill the queue, then free it from a side thread while the retrying
    // submission backs off.
    let queued = service.submit(ring(100, 4), RequestOptions::default()).unwrap();
    let retried = std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(5));
            busy.cancel();
        });
        // Plenty of bounded attempts: the worker needs only to notice the
        // cancellation and drain one queue slot.
        let policy = RetryPolicy { attempts: 2_000, ..RetryPolicy::default() };
        service.submit_with_retry(ring(200, 4), RequestOptions::default(), &policy)
    });
    assert!(retried.expect("retry must outlast the transient backpressure").wait().is_ok());
    assert!(queued.wait().is_ok());
    // A zero-retry policy behaves like plain submit and reports QueueFull.
    let blocker = service.submit(ring(300, 40), RequestOptions::default()).unwrap();
    wait_for("the worker to pick up the blocker", || service.stats().in_flight == 1);
    let full = service.submit(ring(400, 4), RequestOptions::default()).unwrap();
    let refused =
        service.submit_with_retry(ring(500, 4), RequestOptions::default(), &RetryPolicy::new(0));
    assert_eq!(refused.unwrap_err(), Rejected::QueueFull { capacity: 1 });
    blocker.cancel();
    let _ = blocker.wait();
    let _ = full.wait();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Results served through the async layer (with its shared cache and
    /// concurrent workers) are bit-identical to a cold per-session run with
    /// the cache disabled.
    #[test]
    fn served_results_are_bit_identical_to_cold_runs(
        clauses in proptest::collection::vec(proptest::collection::vec(0u32..8, 1..=3), 1..=8)
    ) {
        let phi = Dnf::from_clauses(
            clauses.into_iter().map(|c| c.into_iter().map(Var).collect::<Vec<_>>()),
        );
        // A shifted copy exercises the canonicalization path on top.
        let shifted = Dnf::from_clauses(
            phi.clauses().iter().map(|c| c.iter().map(|v| Var(v.0 + 50)).collect::<Vec<_>>()),
        );
        let service = AttributionService::start(ServeConfig::default().with_workers(2));
        let tickets: Vec<Ticket> = [&phi, &shifted, &phi]
            .iter()
            .map(|l| service.submit((*l).clone(), RequestOptions::default()).unwrap())
            .collect();
        let served = block_on(join_all(tickets));
        let mut cold = Engine::new(EngineConfig::default().with_cache_config(CacheConfig::disabled())).session();
        for (lineage, outcome) in [&phi, &shifted, &phi].iter().zip(served) {
            let served = outcome.expect("unbounded budget");
            let cold = cold.attribute(lineage).expect("unbounded budget");
            prop_assert_eq!(served.exact_values().unwrap(), cold.exact_values().unwrap());
            prop_assert_eq!(served.model_count, cold.model_count);
        }
    }
}
