//! Persistence and sharding integration tests: warm-start snapshots round
//! trip through a fresh engine bit-identically, corrupted snapshots are
//! rejected loudly and degrade to a cold start, and sharded runs match
//! single-shard runs bit for bit.

use banzhaf_repro::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;

/// Strategy generating small random positive DNFs (same shape family as the
/// engine tests) so exact attribution stays cheap.
fn small_dnf() -> impl Strategy<Value = Dnf> {
    proptest::collection::vec(proptest::collection::vec(0u32..8, 1..=3), 1..=8).prop_map(
        |clauses| {
            Dnf::from_clauses(
                clauses.into_iter().map(|c| c.into_iter().map(Var).collect::<Vec<_>>()),
            )
        },
    )
}

/// A per-test scratch file inside a unique temp directory, removed on drop.
struct Scratch {
    dir: PathBuf,
    path: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "banzhaf-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("cache.bzc");
        Scratch { dir, path }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// The FNV-1a the snapshot format checksums with, reimplemented here so the
/// corruption tests can forge a *checksum-valid* file with a bad version.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Save → load in a fresh engine: the replayed stream is served entirely
    /// from the snapshot (identical hits), values transfer through the
    /// persisted witnesses, and every result is bit-identical to a cold
    /// cache-less run.
    #[test]
    fn snapshot_round_trips_bit_identically(phis in proptest::collection::vec(small_dnf(), 1..=6)) {
        let scratch = Scratch::new("roundtrip");
        // Cold cache-less reference.
        let mut reference =
            Engine::new(EngineConfig::default().with_cache_config(CacheConfig::disabled()))
                .session();
        let expected: Vec<Attribution> =
            phis.iter().map(|phi| reference.attribute(phi).unwrap()).collect();
        // First engine compiles and snapshots.
        let first = Engine::new(EngineConfig::default());
        let mut session = first.session();
        let warm_reference: Vec<Attribution> =
            phis.iter().map(|phi| session.attribute(phi).unwrap()).collect();
        let written = first.save_cache(&scratch.path).expect("snapshot written");
        prop_assert!(written > 0);
        // Fresh engine loads the snapshot: every shape already compiled by
        // the first engine must hit, with values bit-identical to both the
        // first run and the cache-less reference.
        let second = Engine::new(
            EngineConfig::default()
                .with_cache_config(CacheConfig::new().with_warm_start(&scratch.path)),
        );
        let stats = second.stats().cache;
        prop_assert_eq!(stats.snapshot_loads, 1);
        prop_assert_eq!(stats.snapshot_rejects, 0);
        prop_assert_eq!(stats.entries, written);
        let mut warm = second.session();
        for ((phi, want), first_run) in phis.iter().zip(&expected).zip(&warm_reference) {
            let have = warm.attribute(phi).unwrap();
            prop_assert!(have.stats.cache_hit, "replayed shape must be served from the snapshot");
            prop_assert_eq!(have.stats.compile_steps, 0);
            prop_assert_eq!(want.exact_values().unwrap(), have.exact_values().unwrap());
            prop_assert_eq!(&want.model_count, &have.model_count);
            prop_assert_eq!(
                first_run.exact_values().unwrap(),
                have.exact_values().unwrap()
            );
        }
        // The warm session scored exactly one hit per request.
        prop_assert_eq!(warm.stats().cache_hits, phis.len() as u64);
    }

    /// Sharded (N >= 2) and single-shard runs are bit-identical at thread
    /// counts 1 and 2, and the per-shard stats sum to the aggregate.
    #[test]
    fn sharded_runs_match_single_shard_bit_for_bit(
        phis in proptest::collection::vec(small_dnf(), 1..=6),
    ) {
        let refs: Vec<&Dnf> = phis.iter().collect();
        let mut single = Engine::new(EngineConfig::default()).session();
        let expected = single.attribute_batch(&refs, BatchOptions::default());
        for shards in [2usize, 3] {
            for threads in [1usize, 2] {
                let engine = Engine::new(
                    EngineConfig::default()
                        .with_cache_config(CacheConfig::new().with_shards(shards))
                        .with_threads(threads),
                );
                let mut session = engine.session();
                let got = session.attribute_batch(&refs, BatchOptions::default());
                for (want, have) in expected.iter().zip(&got) {
                    let (want, have) = (want.as_ref().unwrap(), have.as_ref().unwrap());
                    prop_assert_eq!(want.exact_values().unwrap(), have.exact_values().unwrap());
                    prop_assert_eq!(&want.model_count, &have.model_count);
                    prop_assert_eq!(want.stats.cache_hit, have.stats.cache_hit);
                    prop_assert_eq!(want.stats.compile_steps, have.stats.compile_steps);
                }
                let snapshot = engine.stats();
                prop_assert_eq!(snapshot.shards.len(), shards);
                let hits: u64 = snapshot.shards.iter().map(|s| s.hits).sum();
                let entries: usize = snapshot.shards.iter().map(|s| s.entries).sum();
                prop_assert_eq!(snapshot.cache.hits, hits);
                prop_assert_eq!(snapshot.cache.entries, entries);
                prop_assert_eq!(session.stats().cache_hits, single.stats().cache_hits);
            }
        }
    }
}

/// Writes a good snapshot of a small warmed engine to `path` and returns the
/// reference attribution for later bit-identity checks.
fn write_good_snapshot(path: &std::path::Path) -> Attribution {
    let engine = Engine::new(EngineConfig::default());
    let phi = Dnf::from_clauses(vec![vec![Var(0), Var(1)], vec![Var(1), Var(2)]]);
    let att = engine.session().attribute(&phi).unwrap();
    engine.save_cache(path).expect("snapshot written");
    att
}

/// A warm-start engine pointed at `path` must start *cold* (the snapshot is
/// rejected, counted, and never panics), yet still attribute correctly.
fn assert_degrades_to_cold(path: &std::path::Path, expected: &Attribution) {
    let engine = Engine::new(
        EngineConfig::default().with_cache_config(CacheConfig::new().with_warm_start(path)),
    );
    let stats = engine.stats().cache;
    assert_eq!(stats.snapshot_rejects, 1, "rejected snapshot must be counted");
    assert_eq!(stats.snapshot_loads, 0);
    assert_eq!(stats.entries, 0, "no partial load may be admitted");
    let phi = Dnf::from_clauses(vec![vec![Var(0), Var(1)], vec![Var(1), Var(2)]]);
    let att = engine.session().attribute(&phi).unwrap();
    assert!(!att.stats.cache_hit, "cold start recompiles");
    assert_eq!(att.exact_values().unwrap(), expected.exact_values().unwrap());
}

#[test]
fn truncated_snapshots_are_rejected_and_degrade_to_cold() {
    let scratch = Scratch::new("truncated");
    let expected = write_good_snapshot(&scratch.path);
    let bytes = std::fs::read(&scratch.path).unwrap();
    for len in [0, 4, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&scratch.path, &bytes[..len]).unwrap();
        assert_degrades_to_cold(&scratch.path, &expected);
    }
}

#[test]
fn bad_magic_is_a_typed_error_and_degrades_to_cold() {
    let scratch = Scratch::new("magic");
    let expected = write_good_snapshot(&scratch.path);
    let mut bytes = std::fs::read(&scratch.path).unwrap();
    bytes[0] ^= 0xFF;
    std::fs::write(&scratch.path, &bytes).unwrap();
    // The typed error is observable through the public cache API…
    let probe = Engine::new(EngineConfig::default());
    let err = probe.shared_cache().load(&scratch.path).expect_err("bad magic must be rejected");
    assert!(matches!(err, SnapshotError::BadMagic), "got {err}");
    // …and the warm-start path degrades to cold.
    assert_degrades_to_cold(&scratch.path, &expected);
}

#[test]
fn version_mismatch_is_a_typed_error_and_degrades_to_cold() {
    let scratch = Scratch::new("version");
    let expected = write_good_snapshot(&scratch.path);
    let mut bytes = std::fs::read(&scratch.path).unwrap();
    // Bump the version and re-forge the trailing checksum so *only* the
    // version check can reject the file.
    bytes[8] = 0xFE;
    let checksum = fnv1a(&bytes[8..bytes.len() - 8]);
    let at = bytes.len() - 8;
    bytes[at..].copy_from_slice(&checksum.to_le_bytes());
    std::fs::write(&scratch.path, &bytes).unwrap();
    let probe = Engine::new(EngineConfig::default());
    let err = probe.shared_cache().load(&scratch.path).expect_err("version must be rejected");
    assert!(matches!(err, SnapshotError::UnsupportedVersion(0xFE)), "got {err}");
    assert_degrades_to_cold(&scratch.path, &expected);
}

#[test]
fn garbage_tails_and_bit_flips_are_rejected_and_degrade_to_cold() {
    let scratch = Scratch::new("garbage");
    let expected = write_good_snapshot(&scratch.path);
    let bytes = std::fs::read(&scratch.path).unwrap();
    // Garbage tail.
    let mut tailed = bytes.clone();
    tailed.extend_from_slice(b"not part of the snapshot");
    std::fs::write(&scratch.path, &tailed).unwrap();
    let probe = Engine::new(EngineConfig::default());
    let err = probe.shared_cache().load(&scratch.path).expect_err("garbage tail");
    assert!(matches!(err, SnapshotError::ChecksumMismatch), "got {err}");
    assert_degrades_to_cold(&scratch.path, &expected);
    // A flipped payload byte.
    let mut flipped = bytes;
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    std::fs::write(&scratch.path, &flipped).unwrap();
    assert_degrades_to_cold(&scratch.path, &expected);
    // Pure garbage that never was a snapshot.
    std::fs::write(&scratch.path, b"complete nonsense").unwrap();
    assert_degrades_to_cold(&scratch.path, &expected);
}

#[test]
fn snapshots_are_shard_count_independent() {
    // A snapshot written by a single-shard engine loads into a sharded one
    // (and vice versa): entries are re-routed by fingerprint at load time.
    let scratch = Scratch::new("shardmove");
    let phis: Vec<Dnf> = (0..4u32)
        .map(|o| {
            Dnf::from_clauses(vec![
                vec![Var(o * 10), Var(o * 10 + 1)],
                vec![Var(o * 10 + 1), Var(o * 10 + 2)],
                vec![Var(o * 10 + 2), Var(o * 10 + 3)],
            ])
        })
        .collect();
    let single = Engine::new(EngineConfig::default());
    let mut session = single.session();
    let expected: Vec<Attribution> = phis.iter().map(|p| session.attribute(p).unwrap()).collect();
    single.save_cache(&scratch.path).unwrap();

    let sharded = Engine::new(
        EngineConfig::default()
            .with_cache_config(CacheConfig::new().with_shards(3).with_warm_start(&scratch.path)),
    );
    assert_eq!(sharded.stats().cache.snapshot_loads, 1);
    let mut warm = sharded.session();
    for (phi, want) in phis.iter().zip(&expected) {
        let have = warm.attribute(phi).unwrap();
        assert!(have.stats.cache_hit);
        assert_eq!(want.exact_values().unwrap(), have.exact_values().unwrap());
        // The serving shard is reportable and stable.
        let shard = sharded.shard_of(phi);
        assert!(shard < 3);
        assert_eq!(shard, sharded.shard_of(phi));
    }
}

#[test]
fn service_reports_shards_and_snapshot_counters() {
    use banzhaf_repro::serve::{
        block_on, join_all, AttributionService, RequestOptions, ServeConfig,
    };
    let scratch = Scratch::new("service");
    write_good_snapshot(&scratch.path);
    let service =
        AttributionService::start(
            ServeConfig::new(EngineConfig::default().with_cache_config(
                CacheConfig::new().with_shards(2).with_warm_start(&scratch.path),
            ))
            .with_workers(2),
        );
    let phi = Dnf::from_clauses(vec![vec![Var(5), Var(6)], vec![Var(6), Var(7)]]);
    let shard = service.shard_of(&phi);
    assert!(shard < 2);
    let tickets: Vec<_> =
        (0..2).map(|_| service.submit(phi.clone(), RequestOptions::default()).unwrap()).collect();
    for outcome in block_on(join_all(tickets)) {
        outcome.expect("unbounded budget");
    }
    let stats = service.stats();
    assert_eq!(stats.shards, 2);
    assert_eq!(stats.snapshot_loads, 1);
    assert!(stats.snapshot_entries > 0);
    assert_eq!(stats.snapshot_rejects, 0);
    // The isomorph of the snapshotted shape is served from the snapshot.
    assert!(service.engine_stats().cache.hits >= 1);
}
