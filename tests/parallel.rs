//! Parallel-vs-sequential equivalence properties.
//!
//! The contract of the batch-parallel engine (`Session::attribute_batch`) is
//! that thread count is unobservable in results: for every backend, a batch
//! run at 1, 2 or 4 threads returns per-instance `Attribution`s bit-identical
//! to a sequential `attribute` loop over the same lineages — including
//! sessions with the d-tree cache on, and including instances interrupted by
//! a per-instance step cap.

use banzhaf_repro::prelude::*;
use proptest::prelude::*;

/// Strategy generating small random positive DNFs (as clause lists) so that
/// a whole batch stays cheap even times three backends times three thread
/// counts.
fn small_dnf() -> impl Strategy<Value = Dnf> {
    proptest::collection::vec(proptest::collection::vec(0u32..8, 1..=3), 1..=8).prop_map(
        |clauses| {
            Dnf::from_clauses(
                clauses.into_iter().map(|c| c.into_iter().map(Var).collect::<Vec<_>>()),
            )
        },
    )
}

/// A canonical, order-independent rendering of an attribution's scores.
///
/// `Score` carries exact naturals, certified intervals or `f64` estimates;
/// the Debug rendering of each is injective (f64 uses the shortest
/// round-trip form), so equal strings mean bit-identical scores.
fn score_fingerprint(lineage: &Dnf, attribution: &Attribution) -> Vec<String> {
    lineage
        .universe()
        .iter()
        .map(|x| format!("{x}={:?}", attribution.value(x).expect("universe is scored")))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every backend returns bit-identical attributions at thread counts
    /// 1/2/4, with the session cache both on and off.
    #[test]
    fn batch_attribution_is_thread_count_invariant(
        phis in proptest::collection::vec(small_dnf(), 1..=6),
        cache in any::<bool>(),
    ) {
        for algorithm in [Algorithm::ExaBan, Algorithm::AdaBan, Algorithm::MonteCarlo] {
            let config = EngineConfig::new(algorithm).with_cache_config(CacheConfig::new().with_enabled(cache)).with_seed(7);
            let mut sequential = Engine::new(config.clone()).session();
            let expected: Vec<Attribution> =
                phis.iter().map(|phi| sequential.attribute(phi).unwrap()).collect();
            for threads in [1usize, 2, 4] {
                let mut session = Engine::new(config.clone().with_threads(threads)).session();
                let refs: Vec<&Dnf> = phis.iter().collect();
                let got = session.attribute_batch(&refs, BatchOptions::default());
                prop_assert_eq!(got.len(), expected.len());
                for ((phi, want), have) in phis.iter().zip(&expected).zip(&got) {
                    let have = have.as_ref().unwrap();
                    prop_assert_eq!(
                        score_fingerprint(phi, want),
                        score_fingerprint(phi, have),
                        "{} at {} threads (cache={})",
                        algorithm,
                        threads,
                        cache
                    );
                    prop_assert_eq!(&want.model_count, &have.model_count);
                    prop_assert_eq!(want.stats.cache_hit, have.stats.cache_hit);
                }
                prop_assert_eq!(session.stats().cache_hits, sequential.stats().cache_hits);
            }
        }
    }

    /// Under a per-instance step cap, the Ok/Interrupted pattern and the
    /// completed attributions match the sequential loop at every thread
    /// count (cached sessions included).
    #[test]
    fn interrupted_batches_match_the_sequential_loop(
        phis in proptest::collection::vec(small_dnf(), 2..=6),
        cap in 1u64..40,
        cache in any::<bool>(),
    ) {
        let mut config = EngineConfig::new(Algorithm::ExaBan).with_cache_config(CacheConfig::new().with_enabled(cache));
        config.max_steps = Some(cap);
        let mut sequential = Engine::new(config.clone()).session();
        let expected: Vec<Result<Attribution, Interrupted>> =
            phis.iter().map(|phi| sequential.attribute(phi)).collect();
        for threads in [1usize, 2, 4] {
            let mut session = Engine::new(config.clone().with_threads(threads)).session();
            let refs: Vec<&Dnf> = phis.iter().collect();
            let got = session.attribute_batch(&refs, BatchOptions::default());
            for ((phi, want), have) in phis.iter().zip(&expected).zip(&got) {
                match (want, have) {
                    (Ok(want), Ok(have)) => {
                        prop_assert_eq!(
                            score_fingerprint(phi, want),
                            score_fingerprint(phi, have),
                            "threads={}",
                            threads
                        );
                    }
                    (Err(_), Err(_)) => {}
                    (want, have) => prop_assert!(
                        false,
                        "outcome diverged at {} threads: sequential={:?} batch={:?}",
                        threads,
                        want.is_ok(),
                        have.is_ok()
                    ),
                }
            }
        }
    }
}

/// A shared batch budget interrupts cooperatively across workers: finished
/// instances keep results, starved batches report `Interrupted` everywhere,
/// and the call always joins its workers.
#[test]
fn shared_budget_interrupts_across_workers() {
    let phis: Vec<Dnf> = (0..6u32)
        .map(|s| {
            let o = s * 10;
            Dnf::from_clauses(vec![
                vec![Var(o), Var(o + 1)],
                vec![Var(o + 1), Var(o + 2)],
                vec![Var(o + 2), Var(o + 3)],
                vec![Var(o + 3), Var(o)],
            ])
        })
        .collect();
    let refs: Vec<&Dnf> = phis.iter().collect();
    let config = EngineConfig::new(Algorithm::ExaBan)
        .with_cache_config(CacheConfig::disabled())
        .with_threads(4);
    // One shared step: nothing finishes.
    let starved = Engine::new(config.clone())
        .session()
        .attribute_batch(&refs, BatchOptions::new().with_shared_budget(&Budget::with_max_steps(1)));
    assert!(starved.iter().all(Result::is_err));
    // A generous shared budget completes everything, and the per-fact scores
    // match the unbudgeted sequential loop.
    let generous = Engine::new(config.clone()).session().attribute_batch(
        &refs,
        BatchOptions::new().with_shared_budget(&Budget::with_max_steps(1_000_000)),
    );
    let mut sequential = Engine::new(config).session();
    for (phi, got) in phis.iter().zip(generous) {
        let got = got.expect("generous budget");
        let want = sequential.attribute(phi).expect("unbounded");
        assert_eq!(want.exact_values().unwrap(), got.exact_values().unwrap());
    }
}

/// A contested-heavy *aggregate* batch: four weighted-isomorphic SUM
/// lineages per shape (every fingerprint bucket is contested), plus a COUNT
/// twin of the first shape so kind keying is exercised under fan-out.
fn contested_aggregate_batch() -> Vec<WeightedDnf> {
    let mut lineages = Vec::new();
    for shape in 0..2u32 {
        for rep in 0..4u32 {
            let o = shape * 40 + rep * 10;
            lineages.push(WeightedDnf::from_weighted_clauses(
                AggregateKind::Sum,
                vec![
                    (vec![Var(o), Var(o + 1)], Rational::from(3i64 + i64::from(shape))),
                    (vec![Var(o + 1), Var(o + 2)], Rational::from(7i64)),
                    (vec![Var(o + 2), Var(o + 3)], Rational::from(3i64 + i64::from(shape))),
                ],
            ));
        }
    }
    lineages.push(WeightedDnf::from_weighted_clauses(
        AggregateKind::Count,
        vec![
            (vec![Var(100), Var(101)], Rational::one()),
            (vec![Var(101), Var(102)], Rational::one()),
            (vec![Var(102), Var(103)], Rational::one()),
        ],
    ));
    lineages
}

/// Aggregate batches run through the same two-pass canonicalization plan as
/// Boolean ones: per-fact rationals and aggregate totals are bit-identical
/// at 1, 2 and 4 threads, cache on and off, on a contested-heavy batch.
#[test]
fn contested_aggregate_batches_are_thread_count_invariant() {
    let lineages = contested_aggregate_batch();
    let refs: Vec<&WeightedDnf> = lineages.iter().collect();
    for cache in [true, false] {
        let config = EngineConfig::new(Algorithm::ExaBan)
            .with_cache_config(CacheConfig::new().with_enabled(cache))
            .with_seed(7);
        let mut sequential = Engine::new(config.clone()).session();
        let expected: Vec<Attribution> = lineages
            .iter()
            .map(|l| sequential.attribute_aggregate(l).expect("no budget is set"))
            .collect();
        for threads in [1usize, 2, 4] {
            let mut session = Engine::new(config.clone().with_threads(threads)).session();
            let got = session.attribute_aggregate_batch(&refs, BatchOptions::default());
            assert_eq!(got.len(), expected.len());
            for ((lineage, want), have) in lineages.iter().zip(&expected).zip(&got) {
                let have = have.as_ref().expect("no budget is set");
                assert_eq!(
                    score_fingerprint(lineage.dnf(), want),
                    score_fingerprint(lineage.dnf(), have),
                    "cache={cache} threads={threads}"
                );
                assert_eq!(
                    want.aggregate_total, have.aggregate_total,
                    "cache={cache} threads={threads}"
                );
                assert_eq!(want.aggregate, have.aggregate);
            }
        }
    }
}
